//! Block-based SSTA: propagates canonical arrival times through the timing
//! graph, producing the circuit-delay distribution.

use crate::canonical::CanonicalForm;
use pathrep_circuit::generator::PlacedCircuit;
use pathrep_circuit::netlist::GateId;
use pathrep_variation::catalog::VariableSpace;
use pathrep_variation::model::VariationModel;
use pathrep_variation::sensitivity::gate_contribution_terms;

/// Result of one block-based SSTA run.
#[derive(Debug, Clone)]
pub struct SstaResult {
    arrivals: Vec<CanonicalForm>,
    circuit_delay: CanonicalForm,
}

impl SstaResult {
    /// Canonical arrival time at the output of `gate`.
    pub fn arrival(&self, gate: GateId) -> &CanonicalForm {
        &self.arrivals[gate.index()]
    }

    /// The circuit-delay distribution (max over all output arrivals).
    pub fn circuit_delay(&self) -> &CanonicalForm {
        &self.circuit_delay
    }
}

/// Canonical delay form of a single gate: nominal mean plus its
/// variation-contribution terms in the dense [`VariableSpace`].
pub fn gate_delay_form(
    circuit: &PlacedCircuit,
    model: &VariationModel,
    space: &VariableSpace,
    gate: GateId,
) -> CanonicalForm {
    let terms = gate_contribution_terms(circuit, model, gate)
        .into_iter()
        .map(|(v, c)| (space.index_of(v), c));
    CanonicalForm::from_terms(circuit.nominal_delay(gate), terms)
}

/// Runs block-based SSTA: arrival(g) = delay(g) + max over fanin arrivals
/// (Clark's approximation), then the circuit delay is the max over output
/// arrivals.
///
/// # Panics
///
/// Panics if the circuit has no output gates.
pub fn run_ssta(circuit: &PlacedCircuit, model: &VariationModel) -> SstaResult {
    let space = VariableSpace::new(model, circuit.netlist().gate_count());
    let graph = circuit.graph();
    let mut arrivals: Vec<CanonicalForm> = Vec::with_capacity(graph.gate_count());
    for g in graph.topo_order() {
        let own = gate_delay_form(circuit, model, &space, g);
        let fanin_max = graph
            .fanins(g)
            .iter()
            .map(|&f| arrivals[f.index()].clone())
            .reduce(|acc, x| acc.max(&x));
        let arr = match fanin_max {
            Some(fm) => fm.add(&own),
            None => own,
        };
        arrivals.push(arr);
    }
    let circuit_delay = graph
        .sinks()
        .iter()
        .map(|&s| arrivals[s.index()].clone())
        .reduce(|acc, x| acc.max(&x))
        .expect("circuit must have at least one output");
    SstaResult {
        arrivals,
        circuit_delay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathrep_circuit::cell::{CellKind, CellLibrary};
    use pathrep_circuit::generator::{CircuitGenerator, GeneratorConfig};
    use pathrep_circuit::netlist::{Netlist, Signal};
    use pathrep_circuit::placement::Placement;

    fn chain_circuit(n: usize) -> PlacedCircuit {
        let mut nl = Netlist::new(1);
        let mut prev = None;
        for _ in 0..n {
            let fanin = match prev {
                None => Signal::Input(0),
                Some(g) => Signal::Gate(g),
            };
            prev = Some(nl.add_gate(CellKind::Inv, vec![fanin]).unwrap());
        }
        nl.mark_output(prev.unwrap()).unwrap();
        PlacedCircuit::from_parts(
            nl,
            Placement::new(vec![(0.5, 0.5); n]),
            CellLibrary::synthetic_90nm(),
        )
    }

    #[test]
    fn chain_arrival_is_sum_of_delays() {
        let c = chain_circuit(5);
        let model = VariationModel::three_level();
        let res = run_ssta(&c, &model);
        let expected: f64 = c.netlist().gate_ids().map(|g| c.nominal_delay(g)).sum();
        assert!((res.circuit_delay().mean - expected).abs() < 1e-9);
        // Single path ⇒ variance equals the exact path variance: gates are
        // co-located so spatial terms add coherently.
        assert!(res.circuit_delay().variance() > 0.0);
        assert_eq!(res.circuit_delay().extra_var, 0.0);
    }

    #[test]
    fn chain_variance_exact_when_colocated() {
        // All gates identical and co-located: spatial coefficients add
        // linearly, randoms add in quadrature.
        let n = 4;
        let c = chain_circuit(n);
        let model = VariationModel::three_level();
        let res = run_ssta(&c, &model);
        let t = c.library().timing(CellKind::Inv);
        let spatial_sd_one = ((t.leff_sens_ps * t.leff_sens_ps + t.vt_sens_ps * t.vt_sens_ps)
            * (1.0 - model.random_fraction()))
        .sqrt();
        let rand_var_one =
            model.random_fraction() * (t.leff_sens_ps.powi(2) + t.vt_sens_ps.powi(2));
        let expected_var = (n as f64 * spatial_sd_one).powi(2) + n as f64 * rand_var_one;
        assert!(
            (res.circuit_delay().variance() - expected_var).abs() < 1e-6 * expected_var,
            "var {} vs expected {}",
            res.circuit_delay().variance(),
            expected_var
        );
    }

    #[test]
    fn circuit_delay_dominates_every_output_mean() {
        let c = CircuitGenerator::new(GeneratorConfig::new(200, 16, 12).with_seed(5))
            .generate()
            .unwrap();
        let model = VariationModel::three_level();
        let res = run_ssta(&c, &model);
        for &s in c.graph().sinks() {
            assert!(res.circuit_delay().mean >= res.arrival(s).mean - 1e-9);
        }
    }

    #[test]
    fn arrivals_increase_along_edges() {
        let c = CircuitGenerator::new(GeneratorConfig::new(120, 12, 8).with_seed(6))
            .generate()
            .unwrap();
        let model = VariationModel::three_level();
        let res = run_ssta(&c, &model);
        for g in c.graph().topo_order() {
            for &f in c.graph().fanouts(g) {
                assert!(
                    res.arrival(f).mean > res.arrival(g).mean,
                    "arrival must grow along edges"
                );
            }
        }
    }
}
