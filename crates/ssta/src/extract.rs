//! Statistically-critical path extraction (the paper's `P_tar` producer).
//!
//! Implements a bound-based branch-and-bound enumeration in the spirit of
//! the paper's ref. 11 (Xie & Davoodi, ASPDAC 2009): paths are grown from
//! source gates in best-first order of an *optimistic criticality bound*;
//! a partial path is pruned as soon as even its most optimistic completion
//! cannot reach the yield-loss threshold. The search therefore returns
//! exactly the paths with `yield-loss > threshold` (up to the configured
//! caps), most-critical first.

use crate::yield_est::path_yield_loss;
use pathrep_circuit::generator::PlacedCircuit;
use pathrep_circuit::netlist::GateId;
use pathrep_circuit::paths::Path;
use pathrep_linalg::gauss::normal_quantile;
use pathrep_variation::catalog::VariableSpace;
use pathrep_variation::model::VariationModel;
use pathrep_variation::sensitivity::{gate_contribution_terms, gate_delay_sigma};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Configuration of the extractor.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractConfig {
    /// Timing constraint `T_cons` in ps.
    pub t_cons: f64,
    /// Extract paths with yield-loss strictly above this threshold.
    pub yield_loss_threshold: f64,
    /// Hard cap on the number of returned paths (most critical kept).
    pub max_paths: usize,
    /// Safety cap on branch-and-bound expansions.
    pub max_expansions: usize,
}

impl ExtractConfig {
    /// Creates a config with the paper-style defaults: caps generous enough
    /// for the evaluation sizes.
    pub fn new(t_cons: f64, yield_loss_threshold: f64) -> Self {
        ExtractConfig {
            t_cons,
            yield_loss_threshold,
            max_paths: 5_000,
            max_expansions: 2_000_000,
        }
    }

    /// Sets the path cap.
    pub fn with_max_paths(mut self, max_paths: usize) -> Self {
        self.max_paths = max_paths;
        self
    }
}

/// One extracted path with its Gaussian delay moments.
#[derive(Debug, Clone)]
pub struct ExtractedPath {
    /// The gate sequence.
    pub path: Path,
    /// Mean path delay (ps).
    pub mean: f64,
    /// Path delay standard deviation (ps).
    pub sigma: f64,
    /// `P(d_p > T_cons)`.
    pub yield_loss: f64,
}

/// Best-first branch-and-bound extractor of statistically-critical paths.
#[derive(Debug)]
pub struct CriticalPathExtractor<'a> {
    circuit: &'a PlacedCircuit,
    model: &'a VariationModel,
    config: ExtractConfig,
}

/// A partial path in the search queue, ordered by optimistic bound
/// (smallest `z` = most critical first).
struct State {
    /// Optimistic lower bound on the final `z = (T − mean)/σ`.
    z_lb: f64,
    gate: GateId,
    gates: Vec<GateId>,
    mean: f64,
    variance: f64,
    coeffs: HashMap<usize, f64>,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest bound pops first.
        // NaN-is-smallest keeps the order total (a NaN bound — possible only
        // from poisoned timing data — pops first instead of corrupting the
        // heap invariant) and keeps Eq consistent with Ord.
        pathrep_linalg::vecops::cmp_nan_smallest(other.z_lb, self.z_lb)
    }
}

impl<'a> CriticalPathExtractor<'a> {
    /// Creates an extractor.
    pub fn new(circuit: &'a PlacedCircuit, model: &'a VariationModel, config: ExtractConfig) -> Self {
        CriticalPathExtractor {
            circuit,
            model,
            config,
        }
    }

    /// Runs the extraction. Returns paths with yield-loss above the
    /// threshold, most critical first, capped at `max_paths`.
    pub fn extract(&self) -> Vec<ExtractedPath> {
        let theta = self.config.yield_loss_threshold.clamp(1e-12, 1.0 - 1e-12);
        // Path qualifies iff z = (T − mean)/σ < z_star.
        let z_star = normal_quantile(1.0 - theta);
        self.search(z_star, self.config.max_paths, false)
    }

    /// Enumerates the `k` statistically-most-critical paths with **no**
    /// yield-loss threshold — the scalable `P_tar` producer for large
    /// netlists, where a Monte-Carlo yield estimate (and hence a
    /// threshold) is not affordable up front.
    ///
    /// Implementation: the same best-first branch-and-bound with the
    /// prune bound `z_star` at `+∞`, stopping after `k` completed paths.
    /// States pop in ascending optimistic-`z` order and the bound is
    /// exact at terminal sinks (no remaining completion), so completed
    /// paths surface most-critical-first and the first `k` completions
    /// are the `k` best. A NaN-poisoned delay produces a NaN bound,
    /// which fails the strict `z_lb < z_star` push test even against
    /// `+∞` — a poisoned path can never enter the heap, let alone win
    /// selection (see the NaN heap tests).
    pub fn extract_k_best(&self, k: usize) -> Vec<ExtractedPath> {
        self.search(f64::INFINITY, k, true)
    }

    /// Shared best-first search. `z_star` is the optimistic-bound prune
    /// threshold (`+∞` disables pruning), `max_paths` the completion cap,
    /// `k_best` toggles the k-best ledger annotation.
    fn search(&self, z_star: f64, max_paths: usize, k_best: bool) -> Vec<ExtractedPath> {
        let _span = pathrep_obs::span!("extract_paths");
        let graph = self.circuit.graph();
        let n = graph.gate_count();
        let space = VariableSpace::new(self.model, n);
        let t_cons = self.config.t_cons;

        // Per-gate data.
        let is_output: Vec<bool> = {
            let mut v = vec![false; n];
            for &s in graph.sinks() {
                v[s.index()] = true;
            }
            v
        };
        let mean_g: Vec<f64> = graph
            .topo_order()
            .map(|g| self.circuit.nominal_delay(g))
            .collect();
        let sigma_g: Vec<f64> = graph
            .topo_order()
            .map(|g| gate_delay_sigma(self.circuit, self.model, g))
            .collect();
        let terms: Vec<Vec<(usize, f64)>> = graph
            .topo_order()
            .map(|g| {
                gate_contribution_terms(self.circuit, self.model, g)
                    .into_iter()
                    .map(|(v, c)| (space.index_of(v), c))
                    .collect()
            })
            .collect();

        // Reverse DP: best completion stats from a gate's *fanouts* onward.
        // suffix_mean[g] / suffix_sig[g] include gate g itself.
        let mut suffix_mean = vec![f64::NEG_INFINITY; n];
        let mut suffix_sig = vec![0.0_f64; n];
        for g in graph.topo_order().collect::<Vec<_>>().into_iter().rev() {
            let gi = g.index();
            let mut best_m = if is_output[gi] { 0.0 } else { f64::NEG_INFINITY };
            let mut best_s = 0.0;
            for &f in graph.fanouts(g) {
                let fm = suffix_mean[f.index()];
                if fm > best_m {
                    best_m = fm;
                }
                if suffix_sig[f.index()] > best_s {
                    best_s = suffix_sig[f.index()];
                }
            }
            if best_m.is_finite() {
                suffix_mean[gi] = mean_g[gi] + best_m;
                suffix_sig[gi] = sigma_g[gi] + best_s;
            }
        }

        // Optimistic z for a partial path ending at g (stats include g):
        // completions re-use the suffix DP of g's fanouts (or stop at g).
        let bound = |g: GateId, mean: f64, var: f64| -> f64 {
            let gi = g.index();
            let sigma_p = var.sqrt().max(1e-12);
            let mut rest_m = if is_output[gi] { 0.0 } else { f64::NEG_INFINITY };
            let mut rest_s = 0.0;
            for &f in graph.fanouts(g) {
                if suffix_mean[f.index()] > rest_m {
                    rest_m = suffix_mean[f.index()];
                }
                if suffix_sig[f.index()] > rest_s {
                    rest_s = suffix_sig[f.index()];
                }
            }
            if !rest_m.is_finite() {
                return f64::INFINITY; // no valid completion
            }
            let mean_max = mean + rest_m;
            let num = t_cons - mean_max;
            if num >= 0.0 {
                num / (sigma_p + rest_s)
            } else {
                num / sigma_p
            }
        };

        let mut heap: BinaryHeap<State> = BinaryHeap::new();
        for &s in graph.sources() {
            let si = s.index();
            let mut coeffs: HashMap<usize, f64> = HashMap::new();
            let mut var = 0.0;
            accumulate(&mut coeffs, &mut var, &terms[si]);
            let z_lb = bound(s, mean_g[si], var);
            if z_lb < z_star {
                heap.push(State {
                    z_lb,
                    gate: s,
                    gates: vec![s],
                    mean: mean_g[si],
                    variance: var,
                    coeffs,
                });
            }
        }

        let mut results: Vec<ExtractedPath> = Vec::new();
        let mut expansions = 0usize;
        // Variance-update terms touched by `accumulate` during the search
        // — the branch-and-bound's dominant arithmetic, tallied for the
        // work counters (the term count is a pure function of the visit
        // order, which is deterministic).
        let mut wk_terms: u64 = graph
            .sources()
            .iter()
            .map(|s| terms[s.index()].len() as u64)
            .sum();
        while let Some(state) = heap.pop() {
            if state.z_lb >= z_star
                || results.len() >= max_paths
                || expansions >= self.config.max_expansions
            {
                break;
            }
            expansions += 1;
            let gi = state.gate.index();
            if is_output[gi] {
                let sigma = state.variance.sqrt();
                let z = (t_cons - state.mean) / sigma.max(1e-12);
                if z < z_star {
                    results.push(ExtractedPath {
                        path: Path::new(state.gates.clone()).expect("non-empty by construction"),
                        mean: state.mean,
                        sigma,
                        yield_loss: path_yield_loss(state.mean, sigma, t_cons),
                    });
                }
            }
            for &f in graph.fanouts(state.gate) {
                let fi = f.index();
                let mut coeffs = state.coeffs.clone();
                let mut var = state.variance;
                wk_terms += terms[fi].len() as u64;
                accumulate(&mut coeffs, &mut var, &terms[fi]);
                let mean = state.mean + mean_g[fi];
                let z_lb = bound(f, mean, var);
                if z_lb < z_star {
                    let mut gates = state.gates.clone();
                    gates.push(f);
                    heap.push(State {
                        z_lb,
                        gate: f,
                        gates,
                        mean,
                        variance: var,
                        coeffs,
                    });
                }
            }
        }
        // NaN-total descending order (NaNs last): a poisoned yield loss
        // cannot scramble the ranking.
        results.sort_by(|a, b| pathrep_linalg::vecops::cmp_nan_smallest(b.yield_loss, a.yield_loss));
        results.truncate(max_paths);
        // Each variance-update term costs ~6 flops (incremental variance
        // plus the coefficient add) over a 16-byte read-modify-write.
        pathrep_obs::work::record("extract_paths", 6 * wk_terms, 16 * wk_terms, wk_terms);
        pathrep_obs::counter_add("ssta.extract.expansions", expansions as u64);
        pathrep_obs::counter_add("ssta.extract.paths", results.len() as u64);
        pathrep_obs::gauge_set("ssta.extract.frontier_left", heap.len() as f64);
        pathrep_obs::ledger::record("ssta", "extract", |f| {
            f.int("expansions", expansions as u64)
                .int("paths", results.len() as u64)
                .int("frontier_left", heap.len() as u64)
                .int("max_paths", max_paths as u64)
                .num("t_cons", self.config.t_cons)
                .int("work_flops", 6 * wk_terms)
                .int("work_bytes", 16 * wk_terms);
            // Threshold-mode records stay byte-identical (golden-ledger
            // contract); only the k-best mode carries the extra fact.
            if k_best {
                f.flag("k_best", true);
            }
        });
        results
    }
}

/// Adds a gate's terms into the running coefficient map, updating the
/// variance incrementally: `var += Σ (2 c_j δ_j + δ_j²)`.
fn accumulate(coeffs: &mut HashMap<usize, f64>, var: &mut f64, terms: &[(usize, f64)]) {
    for &(j, d) in terms {
        let c = coeffs.entry(j).or_insert(0.0);
        *var += 2.0 * *c * d + d * d;
        *c += d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathrep_circuit::generator::{CircuitGenerator, GeneratorConfig};
    use crate::yield_est::nominal_circuit_delay;

    #[test]
    fn nan_bound_keeps_the_heap_order_total() {
        // Regression: `State::cmp` used to report a NaN bound as "equal" to
        // everything, a non-transitive comparator that silently corrupts
        // BinaryHeap's invariants. With the total order a NaN bound is the
        // maximum in the inverted order (pops first) and Eq stays
        // consistent with Ord.
        let gate = small_circuit().graph().sinks()[0];
        let state = |z_lb: f64| State {
            z_lb,
            gate,
            gates: Vec::new(),
            mean: 0.0,
            variance: 0.0,
            coeffs: HashMap::new(),
        };
        let (poisoned, small, big) = (state(f64::NAN), state(1.0), state(2.0));
        assert_eq!(poisoned.cmp(&poisoned), Ordering::Equal);
        assert_eq!(poisoned.cmp(&small), Ordering::Greater);
        assert_eq!(small.cmp(&big), Ordering::Greater);
        assert!(poisoned == poisoned, "Eq must match Ord for NaN bounds");
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(state(2.0));
        heap.push(state(f64::NAN));
        heap.push(state(1.0));
        assert!(heap.pop().unwrap().z_lb.is_nan(), "NaN bound pops first");
        assert_eq!(heap.pop().unwrap().z_lb, 1.0);
        assert_eq!(heap.pop().unwrap().z_lb, 2.0);
    }

    fn small_circuit() -> PlacedCircuit {
        CircuitGenerator::new(GeneratorConfig::new(250, 20, 12).with_seed(11))
            .generate()
            .unwrap()
    }

    #[test]
    fn extracts_nonempty_at_nominal_constraint() {
        let c = small_circuit();
        let model = VariationModel::three_level();
        let t = nominal_circuit_delay(&c);
        let cfg = ExtractConfig::new(t, 0.005);
        let paths = CriticalPathExtractor::new(&c, &model, cfg).extract();
        assert!(!paths.is_empty(), "nominal constraint must yield critical paths");
        // The longest nominal path has yield-loss 0.5 > threshold.
        assert!(paths[0].yield_loss >= 0.4);
    }

    #[test]
    fn all_extracted_paths_exceed_threshold() {
        let c = small_circuit();
        let model = VariationModel::three_level();
        let t = nominal_circuit_delay(&c);
        let theta = 0.01;
        let cfg = ExtractConfig::new(t, theta);
        let paths = CriticalPathExtractor::new(&c, &model, cfg).extract();
        for p in &paths {
            assert!(p.yield_loss > theta, "yield loss {} below threshold", p.yield_loss);
        }
    }

    #[test]
    fn results_sorted_most_critical_first() {
        let c = small_circuit();
        let model = VariationModel::three_level();
        let t = nominal_circuit_delay(&c);
        let paths = CriticalPathExtractor::new(&c, &model, ExtractConfig::new(t, 0.005)).extract();
        for w in paths.windows(2) {
            assert!(w[0].yield_loss >= w[1].yield_loss);
        }
    }

    #[test]
    fn paths_are_structurally_valid() {
        let c = small_circuit();
        let model = VariationModel::three_level();
        let t = nominal_circuit_delay(&c);
        let paths = CriticalPathExtractor::new(&c, &model, ExtractConfig::new(t, 0.01)).extract();
        let graph = c.graph();
        for p in &paths {
            let gates = p.path.gates();
            // Starts at a source, ends at an output.
            assert!(graph.fanins(gates[0]).is_empty());
            assert!(graph.sinks().contains(gates.last().unwrap()));
            for w in gates.windows(2) {
                assert!(graph.fanouts(w[0]).contains(&w[1]), "non-edge in path");
            }
        }
    }

    #[test]
    fn path_moments_match_direct_computation() {
        let c = small_circuit();
        let model = VariationModel::three_level();
        let t = nominal_circuit_delay(&c);
        let paths = CriticalPathExtractor::new(&c, &model, ExtractConfig::new(t, 0.01)).extract();
        let space = VariableSpace::new(&model, c.netlist().gate_count());
        for p in paths.iter().take(5) {
            let mean: f64 = p.path.gates().iter().map(|&g| c.nominal_delay(g)).sum();
            let mut coeffs: HashMap<usize, f64> = HashMap::new();
            for &g in p.path.gates() {
                for (v, co) in gate_contribution_terms(&c, &model, g) {
                    *coeffs.entry(space.index_of(v)).or_insert(0.0) += co;
                }
            }
            let var: f64 = coeffs.values().map(|v| v * v).sum();
            assert!((p.mean - mean).abs() < 1e-9);
            assert!((p.sigma - var.sqrt()).abs() < 1e-9);
        }
    }

    #[test]
    fn relaxed_constraint_extracts_fewer_paths() {
        let c = small_circuit();
        let model = VariationModel::three_level();
        let t = nominal_circuit_delay(&c);
        let tight = CriticalPathExtractor::new(&c, &model, ExtractConfig::new(t, 0.01))
            .extract()
            .len();
        let relaxed = CriticalPathExtractor::new(&c, &model, ExtractConfig::new(t * 1.1, 0.01))
            .extract()
            .len();
        assert!(relaxed <= tight);
    }

    #[test]
    fn max_paths_cap_respected() {
        let c = small_circuit();
        let model = VariationModel::three_level();
        let t = nominal_circuit_delay(&c);
        let cfg = ExtractConfig::new(t, 0.001).with_max_paths(3);
        let paths = CriticalPathExtractor::new(&c, &model, cfg).extract();
        assert!(paths.len() <= 3);
    }

    #[test]
    fn k_best_returns_exactly_k_valid_sorted_paths() {
        let c = small_circuit();
        let model = VariationModel::three_level();
        let t = nominal_circuit_delay(&c);
        let cfg = ExtractConfig::new(t, 0.01);
        let paths = CriticalPathExtractor::new(&c, &model, cfg).extract_k_best(10);
        assert_eq!(paths.len(), 10);
        let graph = c.graph();
        for p in &paths {
            let gates = p.path.gates();
            assert!(graph.fanins(gates[0]).is_empty());
            assert!(graph.sinks().contains(gates.last().unwrap()));
            for w in gates.windows(2) {
                assert!(graph.fanouts(w[0]).contains(&w[1]), "non-edge in path");
            }
            // A NaN-poisoned delay can never qualify: the strict
            // `z_lb < z_star` push filter fails for NaN even against +∞.
            assert!(p.mean.is_finite() && p.sigma.is_finite());
            assert!(!p.yield_loss.is_nan());
        }
        for w in paths.windows(2) {
            assert!(w[0].yield_loss >= w[1].yield_loss);
        }
        let mut seen: Vec<&[GateId]> = paths.iter().map(|p| p.path.gates()).collect();
        seen.sort();
        let before = seen.len();
        seen.dedup();
        assert_eq!(before, seen.len(), "duplicate paths in k-best output");
    }

    #[test]
    fn k_best_agrees_with_threshold_extraction_on_the_top_paths() {
        let c = small_circuit();
        let model = VariationModel::three_level();
        let t = nominal_circuit_delay(&c);
        let by_threshold =
            CriticalPathExtractor::new(&c, &model, ExtractConfig::new(t, 0.001)).extract();
        assert!(by_threshold.len() >= 5, "need enough paths to compare");
        let k_best =
            CriticalPathExtractor::new(&c, &model, ExtractConfig::new(t, 0.001)).extract_k_best(5);
        assert_eq!(k_best.len(), 5);
        // Same most-critical path, and the top-5 sets coincide (both
        // modes rank by yield loss under the same T_cons).
        assert_eq!(k_best[0].path.gates(), by_threshold[0].path.gates());
        let mut a: Vec<&[GateId]> = k_best.iter().map(|p| p.path.gates()).collect();
        let mut b: Vec<&[GateId]> = by_threshold[..5].iter().map(|p| p.path.gates()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn k_best_scales_past_the_threshold_census() {
        // The threshold extractor stops at yield-loss > θ; k-best keeps
        // enumerating into the subcritical tail, which is exactly what
        // lets P_tar grow past the old enumeration limit.
        let c = small_circuit();
        let model = VariationModel::three_level();
        let t = nominal_circuit_delay(&c);
        let censused =
            CriticalPathExtractor::new(&c, &model, ExtractConfig::new(t, 0.05)).extract();
        let k = censused.len() + 25;
        let k_best =
            CriticalPathExtractor::new(&c, &model, ExtractConfig::new(t, 0.05)).extract_k_best(k);
        assert!(
            k_best.len() > censused.len(),
            "k-best ({}) must outgrow the threshold census ({})",
            k_best.len(),
            censused.len()
        );
    }

    #[test]
    fn no_duplicate_paths() {
        let c = small_circuit();
        let model = VariationModel::three_level();
        let t = nominal_circuit_delay(&c);
        let paths = CriticalPathExtractor::new(&c, &model, ExtractConfig::new(t, 0.01)).extract();
        let mut seen: Vec<&[GateId]> = paths.iter().map(|p| p.path.gates()).collect();
        seen.sort();
        let before = seen.len();
        seen.dedup();
        assert_eq!(before, seen.len(), "duplicate paths extracted");
    }
}
