//! Statistical static timing analysis substrate.
//!
//! Provides everything the paper's evaluation needs upstream of path
//! selection:
//!
//! * [`sparse`] — sparse coefficient vectors over the variation space;
//! * [`canonical`] — first-order canonical delay forms `µ + Σ aᵢ xᵢ` with
//!   Clark's max approximation for block-based propagation;
//! * [`block`] — block-based SSTA over the timing graph (arrival-time
//!   canonical forms, circuit-delay distribution);
//! * [`yield_est`] — nominal circuit delay, Monte-Carlo circuit timing
//!   yield, and Gaussian path yield;
//! * [`extract`] — **statistically-critical path extraction**: best-first
//!   branch-and-bound enumeration of all paths whose timing yield-loss
//!   exceeds a threshold (the paper's ref. 11), the producer of `P_tar`.

//! [`sparse_model`] adds the CSR assembly of `A = G·Σ` for the
//! large-instance sketched-selection pipeline, value-compatible with the
//! dense builder.

pub mod block;
pub mod criticality;
pub mod canonical;
pub mod extract;
pub mod sparse;
pub mod sparse_model;
pub mod yield_est;

pub use extract::{CriticalPathExtractor, ExtractConfig, ExtractedPath};
pub use sparse_model::SparseDelayModel;
