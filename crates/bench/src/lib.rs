//! Benchmark fixtures and the perf-regression gate.
//!
//! Two surfaces live here:
//!
//! * Shared fixtures for the criterion benches. Each bench regenerates one
//!   of the paper's tables/figures at a reduced, fixed-size configuration
//!   (so a `cargo bench` run finishes in minutes on one core) and prints
//!   the regenerated rows once before timing. The full-size tables are
//!   produced by the `pathrep-eval` binaries
//!   (`cargo run --release -p pathrep-eval --bin table1` etc.); see
//!   EXPERIMENTS.md for the recorded outputs.
//! * The `perf_gate` runner ([`gate`], [`workloads`], and the `perf_gate`
//!   binary): a deterministic, seeded workload matrix whose wall times and
//!   obs operation counters are written to `BENCH_<k>.json` at the repo
//!   root and diffed against the previous baseline, failing the build on
//!   a p50 regression beyond the threshold.

pub mod attribute;
pub mod doctor;
pub mod gate;
pub mod workloads;

use pathrep_eval::pipeline::{prepare, PipelineConfig, PreparedBenchmark};
use pathrep_eval::suite::BenchmarkSpec;

/// A small benchmark circuit used by the timing benches.
pub fn bench_spec(seed: u64) -> BenchmarkSpec {
    BenchmarkSpec {
        name: "bench",
        n_gates: 300,
        n_inputs: 24,
        n_outputs: 18,
        model_levels: 3,
        seed,
        depth: Some(10),
    }
}

/// Prepares the small benchmark with Table-1 settings.
///
/// # Panics
///
/// Panics if preparation fails (deterministic — cannot happen for the
/// built-in spec).
pub fn prepared_small(seed: u64) -> PreparedBenchmark {
    prepare(
        &bench_spec(seed),
        &PipelineConfig {
            max_paths: 300,
            ..PipelineConfig::default()
        },
    )
    .expect("bench spec must prepare")
}

/// Prepares the small benchmark with Table-2 settings (tight constraint,
/// scaled random variation).
///
/// # Panics
///
/// Panics if preparation fails.
pub fn prepared_small_table2(seed: u64) -> PreparedBenchmark {
    prepare(
        &bench_spec(seed),
        &PipelineConfig {
            t_cons_factor: 0.98,
            max_paths: 300,
            random_scale: 3.0,
            ..PipelineConfig::default()
        },
    )
    .expect("bench spec must prepare")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_prepare() {
        let pb = prepared_small(5);
        assert!(pb.path_count() > 0);
        let pb2 = prepared_small_table2(5);
        assert!(pb2.path_count() > 0);
    }
}
