//! Differential performance attribution: *which kernel* a wall-time
//! change lives in.
//!
//! The perf gate's diff ([`crate::gate::diff`]) says *that* a workload's
//! p50 moved; this module says *why*, by joining the two reports'
//! self-time profiles (see [`pathrep_obs::selftime`]) span-path by
//! span-path and ranking the movers by Δself-time. Where the workload
//! also carries `work.<kernel>.flops` counters, each row is annotated
//! with the kernel's achieved throughput (`flops / self_ns` — the units
//! cancel to GFLOP/s) on both sides, separating "the kernel did more
//! work" from "the kernel got slower at the same work".
//!
//! Used by `perf_gate --attribute` and `pathrep-doctor --perf-diff`.

use crate::gate::{BenchReport, WorkloadResult};
use pathrep_obs::selftime::leaf_of;
use std::collections::BTreeMap;

/// One span path's baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanDelta {
    /// Full slash-separated span path.
    pub path: String,
    /// Baseline exclusive (self) nanoseconds; 0 when absent there.
    pub base_self_ns: u64,
    /// Current exclusive nanoseconds; 0 when absent here.
    pub cur_self_ns: u64,
    /// Achieved GFLOP/s of this span's leaf kernel in the baseline, when
    /// the workload recorded `work.<leaf>.flops` (wall-time-derived, so
    /// it lives here — never in the deterministic report body).
    pub base_gflops: Option<f64>,
    /// Achieved GFLOP/s in the current run.
    pub cur_gflops: Option<f64>,
}

impl SpanDelta {
    /// Signed self-time change in nanoseconds.
    pub fn delta_ns(&self) -> i128 {
        self.cur_self_ns as i128 - self.base_self_ns as i128
    }

    /// Relative self-time change (`+0.78` = +78 %); `None` when the span
    /// is new (no baseline self time to compare against).
    pub fn rel_change(&self) -> Option<f64> {
        if self.base_self_ns == 0 {
            None
        } else {
            Some(self.delta_ns() as f64 / self.base_self_ns as f64)
        }
    }
}

/// Attribution of one workload's wall-time change to its spans.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Workload name.
    pub workload: String,
    /// `current p50 / baseline p50`, when both sides exist.
    pub p50_ratio: Option<f64>,
    /// Span rows, biggest self-time increase first.
    pub rows: Vec<SpanDelta>,
}

/// Sums exclusive nanoseconds per leaf span name — the denominator for
/// kernel throughput, since `work.<kernel>.*` counters aggregate over
/// every path the kernel ran under.
fn leaf_self_ns(w: &WorkloadResult) -> BTreeMap<&str, u64> {
    let mut out: BTreeMap<&str, u64> = BTreeMap::new();
    for e in &w.profile {
        *out.entry(leaf_of(&e.path)).or_insert(0) += e.self_ns;
    }
    out
}

/// `work.<leaf>.flops / Σ self_ns(leaf)`: flops per nanosecond, which is
/// numerically identical to GFLOP/s.
fn gflops(w: &WorkloadResult, leaves: &BTreeMap<&str, u64>, leaf: &str) -> Option<f64> {
    let flops = *w.counters.get(&format!("work.{leaf}.flops"))?;
    let ns = *leaves.get(leaf)?;
    if ns == 0 {
        return None;
    }
    Some(flops as f64 / ns as f64)
}

/// Joins two measurements of the same workload by span path and ranks the
/// rows by self-time increase (ties and decreases follow; a span present
/// on only one side joins against zero).
pub fn attribute_workload(baseline: &WorkloadResult, current: &WorkloadResult) -> Attribution {
    let base_leaves = leaf_self_ns(baseline);
    let cur_leaves = leaf_self_ns(current);
    let base_by_path: BTreeMap<&str, &pathrep_obs::selftime::ProfileEntry> = baseline
        .profile
        .iter()
        .map(|e| (e.path.as_str(), e))
        .collect();
    let mut rows = Vec::new();
    let mut seen: BTreeMap<&str, ()> = BTreeMap::new();
    for cur in &current.profile {
        seen.insert(cur.path.as_str(), ());
        let leaf = leaf_of(&cur.path);
        rows.push(SpanDelta {
            path: cur.path.clone(),
            base_self_ns: base_by_path.get(cur.path.as_str()).map_or(0, |e| e.self_ns),
            cur_self_ns: cur.self_ns,
            base_gflops: gflops(baseline, &base_leaves, leaf),
            cur_gflops: gflops(current, &cur_leaves, leaf),
        });
    }
    for base in &baseline.profile {
        if !seen.contains_key(base.path.as_str()) {
            rows.push(SpanDelta {
                path: base.path.clone(),
                base_self_ns: base.self_ns,
                cur_self_ns: 0,
                base_gflops: gflops(baseline, &base_leaves, leaf_of(&base.path)),
                cur_gflops: None,
            });
        }
    }
    rows.sort_by(|a, b| b.delta_ns().cmp(&a.delta_ns()));
    let p50_ratio = if baseline.p50_ms > 0.0 {
        Some(current.p50_ms / baseline.p50_ms)
    } else {
        None
    };
    Attribution {
        workload: current.name.clone(),
        p50_ratio,
        rows,
    }
}

/// Attributes every workload present in both reports (joined by name).
/// Workloads without a profile on either side produce an [`Attribution`]
/// with no rows — rendered as "no profile to attribute", never silently
/// dropped.
pub fn attribute_reports(baseline: &BenchReport, current: &BenchReport) -> Vec<Attribution> {
    let base_by_name: BTreeMap<&str, &WorkloadResult> = baseline
        .workloads
        .iter()
        .map(|w| (w.name.as_str(), w))
        .collect();
    current
        .workloads
        .iter()
        .filter_map(|cur| {
            base_by_name
                .get(cur.name.as_str())
                .map(|base| attribute_workload(base, cur))
        })
        .collect()
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2} ms", ns as f64 / 1e6)
}

fn fmt_pct(rel: Option<f64>) -> String {
    match rel {
        Some(r) => format!("{:+.0} %", r * 100.0),
        None => "new".into(),
    }
}

/// Renders the `GFLOP/s base -> cur` annotation. A side without a
/// throughput figure (span absent from that profile, no `work.*.flops`
/// counter, or zero leaf self-time) reads `n/a`; only when *neither* side
/// has one is the annotation omitted. Non-finite values (a zero-ns leaf
/// sneaking through upstream) also read `n/a` rather than `inf`.
fn fmt_gflops_pair(base: Option<f64>, cur: Option<f64>, prefix: &str) -> String {
    let fmt = |g: Option<f64>| match g {
        Some(v) if v.is_finite() => format!("{v:.2}"),
        _ => "n/a".to_owned(),
    };
    match (base, cur) {
        (None, None) => String::new(),
        (b, c) => format!("{prefix}GFLOP/s {} -> {}", fmt(b), fmt(c)),
    }
}

/// Renders one workload's attribution: a causal headline naming the top
/// self-time mover, then the `top` biggest movers with their throughput
/// annotations.
pub fn render_attribution(a: &Attribution, top: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let p50 = match a.p50_ratio {
        Some(r) => format!("p50 {}", fmt_pct(Some(r - 1.0))),
        None => "p50 n/a".into(),
    };
    let movers: Vec<&SpanDelta> = a.rows.iter().filter(|r| r.delta_ns() != 0).collect();
    match movers.first() {
        None => {
            let _ = writeln!(
                out,
                "{} {p50} — no profile to attribute (profile-less baseline?)",
                a.workload
            );
            return out;
        }
        Some(lead) => {
            let gl = fmt_gflops_pair(lead.base_gflops, lead.cur_gflops, ", ");
            let _ = writeln!(
                out,
                "{} {p50} <= `{}` self-time {}{gl}",
                a.workload,
                lead.path,
                fmt_pct(lead.rel_change()),
            );
        }
    }
    for r in movers.iter().take(top) {
        let gl = fmt_gflops_pair(r.base_gflops, r.cur_gflops, "   ");
        let _ = writeln!(
            out,
            "    {:<44} self {:>10} -> {:>10} ({}){gl}",
            r.path,
            fmt_ms(r.base_self_ns),
            fmt_ms(r.cur_self_ns),
            fmt_pct(r.rel_change()),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathrep_obs::selftime::ProfileEntry;

    fn entry(path: &str, self_ns: u64) -> ProfileEntry {
        ProfileEntry {
            path: path.to_owned(),
            count: 1,
            total_ns: self_ns,
            self_ns,
        }
    }

    fn workload(name: &str, p50: f64, profile: Vec<ProfileEntry>) -> WorkloadResult {
        WorkloadResult {
            name: name.to_owned(),
            p50_ms: p50,
            p95_ms: p50 * 1.2,
            p999_ms: None,
            rows_per_sec: None,
            counters: BTreeMap::new(),
            profile,
        }
    }

    #[test]
    fn biggest_self_time_increase_ranks_first() {
        let base = workload(
            "exact_medium",
            100.0,
            vec![
                entry("exact_select", 1_000_000),
                entry("exact_select/qr_factor", 10_000_000),
                entry("exact_select/svd", 5_000_000),
            ],
        );
        let mut cur = base.clone();
        cur.p50_ms = 131.0;
        cur.profile[1].self_ns = 17_800_000; // qr_factor +78 %
        cur.profile[2].self_ns = 5_500_000; // svd +10 %
        let a = attribute_workload(&base, &cur);
        assert_eq!(a.rows[0].path, "exact_select/qr_factor");
        assert_eq!(a.rows[0].rel_change(), Some(0.78));
        let text = render_attribution(&a, 3);
        assert!(
            text.starts_with("exact_medium p50 +31 % <= `exact_select/qr_factor` self-time +78 %"),
            "{text}"
        );
    }

    #[test]
    fn gflops_annotation_joins_work_counters_to_leaf_self_time() {
        let mut base = workload(
            "w",
            10.0,
            vec![entry("sel/qr_factor", 1_000_000), entry("sel", 500_000)],
        );
        base.counters
            .insert("work.qr_factor.flops".into(), 2_100_000);
        let mut cur = base.clone();
        cur.profile[0].self_ns = 2_000_000; // same flops, twice the time
        let a = attribute_workload(&base, &cur);
        let row = &a.rows[0];
        assert_eq!(row.path, "sel/qr_factor");
        // 2.1e6 flops / 1e6 ns = 2.1 GFLOP/s; halved when time doubles.
        assert_eq!(row.base_gflops, Some(2.1));
        assert_eq!(row.cur_gflops, Some(1.05));
        assert!(render_attribution(&a, 3).contains("GFLOP/s 2.10 -> 1.05"));
    }

    #[test]
    fn one_sided_spans_join_against_zero() {
        let base = workload("w", 10.0, vec![entry("old_span", 1_000)]);
        let cur = workload("w", 10.0, vec![entry("new_span", 2_000)]);
        let a = attribute_workload(&base, &cur);
        assert_eq!(a.rows.len(), 2);
        assert_eq!(a.rows[0].path, "new_span");
        assert_eq!(a.rows[0].rel_change(), None, "new span has no baseline");
        assert_eq!(a.rows[1].path, "old_span");
        assert_eq!(a.rows[1].delta_ns(), -1_000);
    }

    #[test]
    fn injected_slowdown_on_new_span_renders_na_annotation() {
        // The `--inject-slowdown w:span` self-test shape, against a
        // baseline that predates the span: the kernel exists only in the
        // current profile, with its work counter. The annotation must read
        // `n/a -> X`, not silently vanish (the pre-fix behavior).
        let base = workload("w", 10.0, vec![entry("sel", 500_000)]);
        let mut cur = workload(
            "w",
            20.0,
            vec![entry("sel", 500_000), entry("sel/spmm", 2_000_000)],
        );
        cur.counters.insert("work.spmm.flops".into(), 4_200_000);
        let a = attribute_workload(&base, &cur);
        let row = a.rows.iter().find(|r| r.path == "sel/spmm").unwrap();
        assert_eq!(row.base_gflops, None, "span absent from baseline profile");
        assert_eq!(row.cur_gflops, Some(2.1));
        let text = render_attribution(&a, 3);
        assert!(text.contains("GFLOP/s n/a -> 2.10"), "{text}");
        // And symmetrically for a span that disappeared: the baseline-side
        // figure must survive with `n/a` on the current side.
        let b = attribute_workload(&cur, &base);
        let text = render_attribution(&b, 3);
        assert!(text.contains("GFLOP/s 2.10 -> n/a"), "{text}");
    }

    #[test]
    fn zero_leaf_self_time_renders_na_not_inf() {
        // A kernel whose every occurrence recorded 0 ns of self time (all
        // time attributed to children) has no meaningful throughput:
        // flops/0 must render `n/a`, never `inf`.
        let mut base = workload("w", 10.0, vec![entry("sel/svd", 1_000_000)]);
        base.counters.insert("work.svd.flops".into(), 1_000_000);
        let mut cur = base.clone();
        cur.profile[0].self_ns = 0;
        let a = attribute_workload(&base, &cur);
        let row = &a.rows[0];
        assert_eq!(row.cur_gflops, None, "zero self-time has no throughput");
        let text = render_attribution(&a, 3);
        assert!(text.contains("GFLOP/s 1.00 -> n/a"), "{text}");
        assert!(!text.contains("inf"), "{text}");
    }

    #[test]
    fn profile_less_workloads_say_so() {
        let base = workload("w", 10.0, vec![]);
        let cur = workload("w", 12.0, vec![]);
        let a = attribute_workload(&base, &cur);
        assert!(render_attribution(&a, 3).contains("no profile to attribute"));
    }
}
