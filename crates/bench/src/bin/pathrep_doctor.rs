//! Accuracy-diagnosis CLI over numerical-health ledgers.
//!
//! ```text
//! pathrep-doctor <ledger.jsonl> [--diff <other.jsonl>] [--bench BENCH_k.json]
//!                [--top K] [--max-eps-growth X] [--max-e1-growth X]
//!                [--max-cond-growth X] [--min-rank-ratio X] [--inject-rank-drop]
//! pathrep-doctor --perf-diff <base BENCH_a.json> <current BENCH_b.json> [--top K]
//! pathrep-doctor --sketch-parity
//! ```
//!
//! `--perf-diff` mode needs no ledger: it loads two `BENCH_*.json`
//! reports and prints the differential performance attribution — per
//! workload, the spans ranked by Δself-time with achieved-GFLOP/s
//! annotations from the work counters (see `pathrep_bench::attribute`).
//!
//! `--sketch-parity` mode needs no ledger either: it runs the dense and
//! the sparse/sketched selection pipelines on the same small instance and
//! attributes any divergence layer by layer (CSR assembly, sketched
//! subspace, selection agreement, `ε_r` / guard-band), exiting 1 when a
//! parity bound is violated (see `pathrep_bench::doctor::sketch_parity_check`).
//!
//! Single-ledger mode prints the run diagnosis (error-budget attribution,
//! top-k ill-conditioned stages, ADMM convergence quality) and exits 0.
//! With `--diff`, the second ledger is compared against the first under the
//! health thresholds and the process exits 1 on any breach — an accuracy
//! gate for CI. `--inject-rank-drop` perturbs the candidate summary the way
//! a genuine rank-collapse regression would look (self-test: the gate must
//! trip). `--bench` adds the perf report's wall times as context.

use pathrep_bench::attribute::{attribute_reports, render_attribution};
use pathrep_bench::doctor::{
    diff, has_breach, inject_rank_drop, missing_stages, render_diff, render_sketch_parity,
    render_summary, sketch_parity_check, summarize, HealthThresholds, RunSummary,
};
use pathrep_bench::gate::BenchReport;
use std::process::ExitCode;

struct Args {
    ledger: String,
    diff_ledger: Option<String>,
    bench: Option<String>,
    top: usize,
    thresholds: HealthThresholds,
    inject_rank_drop: bool,
    perf_diff: Option<(String, String)>,
    sketch_parity: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut ledger = None;
    let mut args = Args {
        ledger: String::new(),
        diff_ledger: None,
        bench: None,
        top: 5,
        thresholds: HealthThresholds::default(),
        inject_rank_drop: false,
        perf_diff: None,
        sketch_parity: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let parse_f64 = |name: &str, v: String| {
            v.parse::<f64>().map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--diff" => args.diff_ledger = Some(value("--diff")?),
            "--bench" => args.bench = Some(value("--bench")?),
            "--top" => {
                args.top = value("--top")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
            }
            "--max-eps-growth" => {
                args.thresholds.max_eps_growth = parse_f64("--max-eps-growth", value("--max-eps-growth")?)?;
            }
            "--max-e1-growth" => {
                args.thresholds.max_e1_growth = parse_f64("--max-e1-growth", value("--max-e1-growth")?)?;
            }
            "--max-cond-growth" => {
                args.thresholds.max_cond_growth = parse_f64("--max-cond-growth", value("--max-cond-growth")?)?;
            }
            "--min-rank-ratio" => {
                args.thresholds.min_rank_ratio = parse_f64("--min-rank-ratio", value("--min-rank-ratio")?)?;
            }
            "--inject-rank-drop" => args.inject_rank_drop = true,
            "--sketch-parity" => args.sketch_parity = true,
            "--perf-diff" => {
                let base = value("--perf-diff")?;
                let cur = it
                    .next()
                    .ok_or("--perf-diff requires two BENCH_*.json paths")?;
                args.perf_diff = Some((base, cur));
            }
            "--help" | "-h" => {
                println!(
                    "pathrep-doctor <ledger.jsonl> [--diff other.jsonl] [--bench BENCH_k.json] \
                     [--top K] [--max-eps-growth X] [--max-e1-growth X] [--max-cond-growth X] \
                     [--min-rank-ratio X] [--inject-rank-drop]\n\
                     pathrep-doctor --perf-diff BENCH_a.json BENCH_b.json [--top K]\n\
                     pathrep-doctor --sketch-parity"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') && ledger.is_none() => {
                ledger = Some(other.to_owned());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.perf_diff.is_none() && !args.sketch_parity {
        args.ledger = ledger.ok_or("a ledger path is required")?;
    }
    Ok(args)
}

/// Runs `--perf-diff` mode: loads two bench reports, prints the env
/// comparability banner and per-workload Δself-time attribution, and
/// exits 0 (attribution diagnoses; the perf gate decides pass/fail).
fn perf_diff(base_path: &str, cur_path: &str, top: usize) -> ExitCode {
    let load = |path: &str| -> Result<BenchReport, String> {
        std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|t| BenchReport::from_json(&t).map_err(|e| format!("{path}: {e}")))
    };
    let (base, cur) = match (load(base_path), load(cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("pathrep-doctor: {e}");
            return ExitCode::from(2);
        }
    };
    let env_verdict = pathrep_bench::gate::assess_env(&base.env, &cur.env);
    if env_verdict.unreliable {
        println!("WARNING: COMPARISON UNRELIABLE — environment mismatch:");
        for reason in &env_verdict.reasons {
            println!("  reason: {reason}");
        }
        println!(
            "pathrep-doctor: env_unreliable=true reasons={}",
            env_verdict.reasons.join("; ")
        );
    }
    println!(
        "perf attribution: {cur_path} (commit {}) vs {base_path} (commit {}):",
        cur.commit, base.commit
    );
    for a in attribute_reports(&base, &cur) {
        print!("{}", render_attribution(&a, top));
    }
    ExitCode::SUCCESS
}

fn load_summary(path: &str) -> Result<RunSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let records = pathrep_obs::ledger::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    if records.is_empty() {
        return Err(format!("{path}: ledger is empty"));
    }
    Ok(summarize(&records))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pathrep-doctor: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some((base_path, cur_path)) = &args.perf_diff {
        return perf_diff(base_path, cur_path, args.top);
    }

    if args.sketch_parity {
        let report = sketch_parity_check();
        print!("{}", render_sketch_parity(&report));
        return if report.pass() {
            ExitCode::SUCCESS
        } else {
            eprintln!("pathrep-doctor: FAIL — sketch/dense parity bounds violated");
            ExitCode::FAILURE
        };
    }

    let baseline = match load_summary(&args.ledger) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pathrep-doctor: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(bench_path) = &args.bench {
        match std::fs::read_to_string(bench_path)
            .map_err(|e| e.to_string())
            .and_then(|t| BenchReport::from_json(&t))
        {
            Ok(report) => {
                println!(
                    "perf context from {bench_path} (commit {}):",
                    report.commit
                );
                for w in &report.workloads {
                    println!("  {:<20} p50 {:>9.2} ms", w.name, w.p50_ms);
                }
                println!();
            }
            Err(e) => eprintln!("pathrep-doctor: [warn] cannot load {bench_path}: {e}"),
        }
    }

    let Some(diff_path) = &args.diff_ledger else {
        print!("{}", render_summary(&baseline, args.top));
        return ExitCode::SUCCESS;
    };

    let mut candidate = match load_summary(diff_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pathrep-doctor: {e}");
            return ExitCode::from(2);
        }
    };
    if args.inject_rank_drop {
        eprintln!("pathrep-doctor: injecting rank-drop regression into candidate (self-test)");
        inject_rank_drop(&mut candidate);
    }

    println!("baseline  {}:", args.ledger);
    print!("{}", render_summary(&baseline, args.top));
    println!("\ncandidate {diff_path}:");
    print!("{}", render_summary(&candidate, args.top));

    let findings = diff(&baseline, &candidate, &args.thresholds);
    let missing = missing_stages(&baseline, &candidate);
    println!("\ndiff (candidate vs baseline):");
    print!("{}", render_diff(&findings));
    for stage in &missing {
        println!("breach: stage `{stage}` wrote records in the baseline but none in the candidate");
    }

    if has_breach(&findings) || !missing.is_empty() {
        eprintln!("pathrep-doctor: FAIL — accuracy health thresholds breached");
        ExitCode::FAILURE
    } else {
        println!("pathrep-doctor: OK — runs are accuracy-equivalent within thresholds");
        ExitCode::SUCCESS
    }
}
