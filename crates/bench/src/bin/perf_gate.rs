//! The perf-regression gate runner.
//!
//! Runs the calibrated workload matrix (see `pathrep_bench::workloads`),
//! writes the next-numbered `BENCH_<k>.json` at the repo root, and — when
//! `--baseline <path>` is given — diffs p50 wall times per workload
//! against that baseline, printing a comparison table and exiting
//! non-zero if any workload regressed beyond the threshold.
//!
//! ```text
//! perf_gate [--baseline BENCH_1.json] [--repeat N] [--threshold PCT]
//!           [--out PATH] [--inject-slowdown WORKLOAD[:SPANPATH]]
//!           [--par-threads N] [--attribute]
//! ```
//!
//! `--inject-slowdown` doubles the recorded wall times of one workload
//! after measurement — a self-test hook proving the gate actually trips
//! (`perf_gate --baseline BENCH_1.json --inject-slowdown exact_small`
//! must exit 1). With a `:SPANPATH` suffix it also doubles the self-time
//! of that span subtree in the workload's profile, so
//! `--inject-slowdown exact_medium:exact_select/qr_factor --attribute`
//! must name exactly that span as the top Δself-time contributor — the
//! attribution plane's self-test.
//!
//! `--attribute` adds a differential attribution section to the baseline
//! diff: per changed workload, the spans ranked by self-time delta with
//! achieved-GFLOP/s annotations (see `pathrep_bench::attribute`).
//!
//! `--par-threads N` (default 4) adds a second measurement axis: after the
//! sequential pass (pathrep-par pinned to 1 worker, recorded under the
//! original workload names and gated against the baseline), the matrix
//! runs again with `N` workers, recorded as `{name}@t{N}` rows —
//! informational for the wall-time gate, but the operation counters of the
//! two axes must match *exactly*: a counter that moves with the worker
//! count means a kernel's work depends on scheduling, which breaks the
//! bit-determinism contract, and the gate hard-fails.

use pathrep_bench::attribute::{attribute_reports, render_attribution};
use pathrep_bench::gate::{
    assess_env, diff, environment_fingerprint, has_regression, render_diff, render_env_diff,
    BenchReport, DEFAULT_THRESHOLD, SCHEMA_VERSION,
};
use pathrep_bench::workloads::{large_workload_matrix, measure, workload_matrix};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    baseline: Option<String>,
    repeat: usize,
    threshold: f64,
    out: Option<String>,
    inject_slowdown: Option<String>,
    par_threads: usize,
    attribute: bool,
    only: Option<Vec<String>>,
    include_large: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: None,
        repeat: 5,
        threshold: DEFAULT_THRESHOLD,
        out: None,
        inject_slowdown: None,
        par_threads: 4,
        attribute: false,
        only: None,
        include_large: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--out" => args.out = Some(value("--out")?),
            "--inject-slowdown" => args.inject_slowdown = Some(value("--inject-slowdown")?),
            "--attribute" => args.attribute = true,
            "--include-large" => args.include_large = true,
            "--only" => {
                let names: Vec<String> = value("--only")?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
                if names.is_empty() {
                    return Err("--only requires at least one workload name".into());
                }
                args.only.get_or_insert_with(Vec::new).extend(names);
            }
            "--repeat" => {
                args.repeat = value("--repeat")?
                    .parse()
                    .map_err(|e| format!("--repeat: {e}"))?;
            }
            "--par-threads" => {
                args.par_threads = value("--par-threads")?
                    .parse()
                    .map_err(|e| format!("--par-threads: {e}"))?;
                if args.par_threads == 0 {
                    return Err("--par-threads must be at least 1".into());
                }
            }
            "--threshold" => {
                let pct: f64 = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
                if !(pct > 0.0) {
                    return Err("--threshold must be a positive percentage".into());
                }
                args.threshold = pct / 100.0;
            }
            "--help" | "-h" => {
                println!(
                    "perf_gate [--baseline BENCH_k.json] [--repeat N] \
                     [--threshold PCT] [--out PATH] \
                     [--inject-slowdown WORKLOAD[:SPANPATH]] \
                     [--par-threads N] [--attribute] \
                     [--include-large] [--only NAME[,NAME…]]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// The workspace root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the repo root")
        .to_path_buf()
}

/// The next unused `BENCH_<k>.json` index at `root` (1 on a clean tree).
fn next_bench_index(root: &Path) -> u64 {
    let mut max = 0;
    if let Ok(entries) = std::fs::read_dir(root) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(k) = name
                .strip_prefix("BENCH_")
                .and_then(|r| r.strip_suffix(".json"))
                .and_then(|k| k.parse::<u64>().ok())
            {
                max = max.max(k);
            }
        }
    }
    max + 1
}

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            return ExitCode::from(2);
        }
    };

    // When `--only` names exclusively `*_large` rows, skip the default
    // matrix entirely — its shared instances take seconds to prepare and
    // none of them would be measured.
    let skip_base = args.include_large
        && args
            .only
            .as_ref()
            .is_some_and(|o| o.iter().all(|n| n.ends_with("_large")));
    let mut workloads = if skip_base {
        Vec::new()
    } else {
        eprintln!("perf_gate: preparing workload matrix (untimed)…");
        workload_matrix()
    };
    if args.include_large {
        eprintln!("perf_gate: preparing large workload matrix (untimed)…");
        workloads.extend(large_workload_matrix());
    }
    if let Some(only) = &args.only {
        for name in only {
            if !workloads.iter().any(|w| w.name == *name) {
                eprintln!(
                    "perf_gate: --only: no workload named `{name}`{}",
                    if name.ends_with("_large") && !args.include_large {
                        " (did you forget --include-large?)"
                    } else {
                        ""
                    }
                );
                return ExitCode::from(2);
            }
        }
        workloads.retain(|w| only.iter().any(|n| n == w.name));
    }
    eprintln!(
        "perf_gate: measuring {} workloads × {} repeats (1 worker)…",
        workloads.len(),
        args.repeat
    );
    pathrep_par::set_threads(1);
    let mut results = measure(&workloads, args.repeat);

    if args.par_threads > 1 {
        eprintln!(
            "perf_gate: measuring thread axis ({} workers)…",
            args.par_threads
        );
        pathrep_par::set_threads(args.par_threads);
        let threaded = measure(&workloads, args.repeat);
        pathrep_par::set_threads(0);

        // Determinism cross-check: identical seeds at a different worker
        // count must do identical work. Any counter drift is a scheduling
        // dependence in a kernel — a hard failure, not a perf question.
        let mut counter_mismatch = false;
        println!(
            "\nperf_gate: thread axis t1 → t{} (wall-time informational, \
             counters must match):",
            args.par_threads
        );
        println!(
            "  {:<20} {:>12} {:>12} {:>9}",
            "workload", "t1 p50", "t-N p50", "speedup"
        );
        for (seq, par) in results.iter().zip(threaded.iter()) {
            let speedup = if par.p50_ms > 0.0 {
                seq.p50_ms / par.p50_ms
            } else {
                1.0
            };
            println!(
                "  {:<20} {:>9.2} ms {:>9.2} ms {:>8.2}×",
                seq.name, seq.p50_ms, par.p50_ms, speedup
            );
            if seq.counters != par.counters {
                counter_mismatch = true;
                eprintln!(
                    "perf_gate: FAIL — workload `{}` counters differ between \
                     1 and {} workers:",
                    seq.name, args.par_threads
                );
                for (k, v1) in &seq.counters {
                    let vn = par.counters.get(k).copied().unwrap_or(0);
                    if *v1 != vn {
                        eprintln!("  counter {k}: t1 {v1} → t{} {vn}", args.par_threads);
                    }
                }
                for (k, vn) in &par.counters {
                    if !seq.counters.contains_key(k) {
                        eprintln!("  counter {k}: t1 0 → t{} {vn}", args.par_threads);
                    }
                }
            }
        }
        if counter_mismatch {
            eprintln!(
                "perf_gate: FAIL — operation counters depend on the worker \
                 count; a kernel broke the determinism contract"
            );
            return ExitCode::FAILURE;
        }
        results.extend(threaded.into_iter().map(|mut r| {
            r.name = format!("{}@t{}", r.name, args.par_threads);
            r
        }));
    }

    if let Some(victim) = &args.inject_slowdown {
        let (wl_name, span_path) = match victim.split_once(':') {
            Some((w, s)) => (w, Some(s)),
            None => (victim.as_str(), None),
        };
        match results.iter_mut().find(|r| r.name == wl_name) {
            Some(r) => {
                eprintln!("perf_gate: injecting 2× slowdown into `{victim}` (self-test)");
                r.p50_ms *= 2.0;
                r.p95_ms *= 2.0;
                if let Some(span) = span_path {
                    // Double the injected span subtree's recorded time so
                    // attribution must finger it.
                    let mut hits = 0;
                    for e in &mut r.profile {
                        if e.path == span || e.path.starts_with(&format!("{span}/")) {
                            e.self_ns *= 2;
                            e.total_ns *= 2;
                            hits += 1;
                        }
                    }
                    if hits == 0 {
                        eprintln!(
                            "perf_gate: --inject-slowdown: no span path `{span}` in \
                             workload `{wl_name}`'s profile"
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            None => {
                eprintln!("perf_gate: --inject-slowdown: no workload named `{wl_name}`");
                return ExitCode::from(2);
            }
        }
    }

    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        commit: git_commit(),
        env: environment_fingerprint(),
        workloads: results,
    };

    let root = repo_root();
    let out_path = match &args.out {
        Some(p) => PathBuf::from(p),
        None => root.join(format!("BENCH_{}.json", next_bench_index(&root))),
    };
    if let Err(e) = std::fs::write(&out_path, report.to_json() + "\n") {
        eprintln!("perf_gate: failed to write {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    println!("perf_gate: wrote {}", out_path.display());
    for w in &report.workloads {
        let p999 = match w.p999_ms {
            Some(v) => format!("   p999 {v:>9.2} ms"),
            None => String::new(),
        };
        println!(
            "  {:<20} p50 {:>9.2} ms   p95 {:>9.2} ms{p999}",
            w.name, w.p50_ms, w.p95_ms
        );
    }

    let Some(baseline_path) = &args.baseline else {
        return ExitCode::SUCCESS;
    };
    let baseline = match std::fs::read_to_string(baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|text| BenchReport::from_json(&text))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf_gate: cannot load baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let rows = diff(&baseline, &report, args.threshold);
    println!(
        "\nperf_gate: vs {} (commit {}, threshold {:.0} %):",
        baseline_path,
        baseline.commit,
        args.threshold * 100.0
    );
    // Environment fingerprint comparison: a regression measured on a
    // loaded or differently-provisioned box should read as an environment
    // delta, not a code problem.
    print!("{}", render_env_diff(&baseline.env, &report.env));
    let env_verdict = assess_env(&baseline.env, &report.env);
    if env_verdict.unreliable {
        println!("┌──────────────────────────────────────────────────────────────┐");
        println!("│ WARNING: COMPARISON UNRELIABLE — environment mismatch        │");
        println!("│ wall-time verdicts below are suspect; exact counters hold    │");
        println!("└──────────────────────────────────────────────────────────────┘");
        for reason in &env_verdict.reasons {
            println!("  reason: {reason}");
        }
        // Machine-readable: scripts grep this exact line.
        println!(
            "perf_gate: env_unreliable=true reasons={}",
            env_verdict.reasons.join("; ")
        );
    }
    print!("{}", render_diff(&rows));
    if args.attribute {
        println!("\nperf_gate: differential attribution (Δself-time, biggest first):");
        for a in attribute_reports(&baseline, &report) {
            print!("{}", render_attribution(&a, 5));
        }
    }
    if has_regression(&rows) {
        eprintln!("perf_gate: FAIL — at least one workload regressed");
        ExitCode::FAILURE
    } else {
        println!("perf_gate: OK — no workload regressed beyond the threshold");
        ExitCode::SUCCESS
    }
}
