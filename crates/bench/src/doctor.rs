//! Accuracy diagnosis over numerical-health ledgers (`pathrep-doctor`).
//!
//! Reads the JSONL ledger written by `pathrep_obs::ledger`
//! (`PATHREP_OBS_LEDGER=<path>`) and condenses it into a [`RunSummary`]:
//! per-stage error-budget attribution, the top-k ill-conditioned
//! factorizations, and ADMM convergence quality (iterations-to-tolerance
//! and stall detection over the full residual curves). Two summaries can
//! be [`diff`]ed under configurable [`HealthThresholds`] — the accuracy
//! analogue of the perf gate in [`crate::gate`] — producing findings like
//! "ε_wc grew 3.0× while effective rank dropped from 41 to 28" and a
//! non-zero exit in the `pathrep-doctor` binary on any breach.

use pathrep_obs::json::JsonValue;
use pathrep_obs::ledger::LedgerRecord;
use std::collections::{BTreeMap, BTreeSet};

/// Relative-change limits between a baseline run and a candidate run.
/// All are ratios, so cross-machine floating-point jitter stays below
/// them on identical seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthThresholds {
    /// Maximum allowed growth of the analytic worst-case error `ε_r`.
    pub max_eps_growth: f64,
    /// Maximum allowed growth of the measured Monte-Carlo error `e1`.
    pub max_e1_growth: f64,
    /// Maximum allowed growth of the worst condition-number estimate.
    pub max_cond_growth: f64,
    /// Minimum allowed ratio `effective_rank(candidate)/effective_rank(baseline)`.
    pub min_rank_ratio: f64,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        HealthThresholds {
            max_eps_growth: 1.5,
            max_e1_growth: 1.5,
            max_cond_growth: 10.0,
            min_rank_ratio: 0.7,
        }
    }
}

/// Convergence quality of one ADMM solve, derived from its ledger record.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmmQuality {
    /// Solver name (`admm_linearized` / `admm_ellipsoid`).
    pub name: String,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the stopping criterion was met.
    pub converged: bool,
    /// First iteration at which the primal residual was within 5 % of its
    /// final floor — how quickly the solve actually got there.
    pub iters_to_tol: Option<usize>,
    /// True when the solve was unconverged *and* the primal residual
    /// improved by less than 5 % over the last quarter of the curve:
    /// spending more iterations would not have helped.
    pub stalled: bool,
    /// Final primal residual.
    pub primal: f64,
    /// Final dual residual.
    pub dual: f64,
    /// Achieved worst row std vs the feasibility radius (≤ 1 is feasible).
    pub feasibility: Option<f64>,
}

/// One ill-conditioned factorization, for the top-k report.
#[derive(Debug, Clone, PartialEq)]
pub struct CondEntry {
    /// Ledger sequence number (orders the factorizations within the run).
    pub seq: u64,
    /// Record name (`svd` / `qr_pivoted`).
    pub name: String,
    /// Condition-number estimate (`s_max/s_min`, or the inverse pivot
    /// decay for pivoted QR). Infinite for an exactly singular matrix.
    pub cond: f64,
}

/// Everything the doctor derives from one ledger.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSummary {
    /// Run id of the last record.
    pub run: String,
    /// Workload label from the `meta/run_context` record, when present.
    pub label: Option<String>,
    /// Workload seed, when announced.
    pub seed: Option<u64>,
    /// Distinct pipeline stages that wrote records.
    pub stages: BTreeSet<String>,
    /// Total record count.
    pub records: usize,
    /// Every factorization's conditioning, worst first.
    pub conditioning: Vec<CondEntry>,
    /// Numerical rank from the last selection record.
    pub rank: Option<f64>,
    /// Effective rank (paper §4.2) from the last Algorithm-1 record.
    pub effective_rank: Option<f64>,
    /// Analytic worst-case error `ε_r` of the returned selection.
    pub epsilon_r: Option<f64>,
    /// The pre-specified tolerance ε it was checked against.
    pub epsilon: Option<f64>,
    /// Whether the selection met the tolerance.
    pub accepted: Option<bool>,
    /// Length of the `r`-decrement trace (Algorithm-1 evaluations).
    pub decrement_steps: usize,
    /// Quality of every ADMM solve, in ledger order.
    pub admm: Vec<AdmmQuality>,
    /// Monte-Carlo mean worst-case relative error `e1`.
    pub e1: Option<f64>,
    /// Monte-Carlo mean average relative error `e2`.
    pub e2: Option<f64>,
    /// Average guard-band `φ = ε_i·T_cons` in delay units.
    pub avg_phi: Option<f64>,
    /// Guard-band decisiveness (fraction of confident verdicts).
    pub decisiveness: Option<f64>,
    /// Record kinds (`stage/name`) the doctor has no analysis for, with
    /// counts. Newer library versions (e.g. `pathrep-serve`'s
    /// `serve/model_load`) may write kinds this doctor predates; they are
    /// surfaced here — never silently dropped, never a failure.
    pub unknown_kinds: BTreeMap<String, usize>,
}

fn cond_of(rec: &LedgerRecord) -> Option<f64> {
    match rec.name.as_str() {
        // `cond` serializes as JSON null when infinite (singular matrix).
        "svd" => match rec.fact("cond") {
            Some(JsonValue::Null) => Some(f64::INFINITY),
            Some(v) => v.number().ok(),
            None => None,
        },
        "qr_pivoted" => rec.num("pivot_decay").map(|d| {
            if d > 0.0 {
                1.0 / d
            } else {
                f64::INFINITY
            }
        }),
        _ => None,
    }
}

fn admm_quality(rec: &LedgerRecord) -> AdmmQuality {
    let curve = rec.curve("primal_curve").unwrap_or_default();
    let converged = matches!(rec.fact("converged"), Some(JsonValue::Bool(true)));
    let final_primal = rec.num("primal_residual").unwrap_or(f64::NAN);
    let iters_to_tol = if final_primal.is_finite() {
        curve
            .iter()
            .position(|&p| p <= final_primal * 1.05)
            .map(|i| i + 1)
    } else {
        None
    };
    // Stall: unconverged and <5 % improvement over the last quarter.
    let stalled = !converged
        && curve.len() >= 20
        && {
            let q = curve.len() / 4;
            let mid: f64 = curve[curve.len() - 2 * q..curve.len() - q].iter().sum::<f64>() / q as f64;
            let tail: f64 = curve[curve.len() - q..].iter().sum::<f64>() / q as f64;
            tail > 0.95 * mid
        };
    let feasibility = match (rec.num("worst_row_std"), rec.num("radius")) {
        (Some(w), Some(r)) if r > 0.0 => Some(w / r),
        _ => None,
    };
    AdmmQuality {
        name: rec.name.clone(),
        iterations: rec.num("iterations").unwrap_or(0.0) as usize,
        converged,
        iters_to_tol,
        stalled,
        primal: final_primal,
        dual: rec.num("dual_residual").unwrap_or(f64::NAN),
        feasibility,
    }
}

/// Condenses a parsed ledger into a [`RunSummary`]. Later records win
/// where a quantity appears more than once (e.g. repeated selections).
pub fn summarize(records: &[LedgerRecord]) -> RunSummary {
    let mut s = RunSummary {
        records: records.len(),
        ..RunSummary::default()
    };
    for rec in records {
        s.run = rec.run.clone();
        if rec.seed.is_some() {
            s.seed = rec.seed;
        }
        s.stages.insert(rec.stage.clone());
        match (rec.stage.as_str(), rec.name.as_str()) {
            ("meta", "run_context") => {
                s.label = rec.text("label");
            }
            ("linalg", _) => {
                if let Some(cond) = cond_of(rec) {
                    s.conditioning.push(CondEntry {
                        seq: rec.seq,
                        name: rec.name.clone(),
                        cond,
                    });
                }
            }
            ("convopt", _) => s.admm.push(admm_quality(rec)),
            ("core", "approx_select") => {
                s.rank = rec.num("rank");
                s.effective_rank = rec.num("effective_rank");
                s.epsilon_r = rec.num("epsilon_r");
                s.epsilon = rec.num("epsilon");
                s.accepted = match rec.fact("accepted") {
                    Some(JsonValue::Bool(b)) => Some(*b),
                    _ => None,
                };
                s.decrement_steps = rec
                    .curve("epsilon_r_trace")
                    .map(|t| t.len())
                    .unwrap_or(0);
            }
            ("core", "hybrid_select") => {
                s.epsilon_r = rec.num("epsilon_r");
                s.epsilon = rec.num("epsilon");
            }
            ("core", "exact_select") => {
                s.rank = rec.num("rank");
            }
            ("eval", "mc_evaluate") => {
                s.e1 = rec.num("e1");
                s.e2 = rec.num("e2");
            }
            ("eval", "guardband") => {
                s.avg_phi = rec.num("avg_phi");
                s.decisiveness = rec.num("decisiveness");
            }
            // Kinds with no extracted metric but known provenance; they
            // contribute stage coverage only.
            ("ssta", "extract") | ("eval", "prepare") => {}
            // Anything else was written by a library newer than this
            // doctor (e.g. `serve/model_load`). Count and report it —
            // silently dropping records would hide coverage, and failing
            // would make every ledger-schema addition a breaking change.
            (stage, name) => {
                *s.unknown_kinds
                    .entry(format!("{stage}/{name}"))
                    .or_insert(0) += 1;
            }
        }
    }
    // NaN-total descending order (NaNs last; infinite conditioning sorts
    // first, as it should).
    s.conditioning
        .sort_by(|a, b| pathrep_linalg::vecops::cmp_nan_smallest(b.cond, a.cond));
    s
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.4e}"),
        None => "-".into(),
    }
}

/// Renders the single-run diagnosis: stage coverage, the error budget,
/// the `top_k` worst-conditioned factorizations, and ADMM quality.
pub fn render_summary(s: &RunSummary, top_k: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "run {}{}{} — {} records across stages [{}]\n",
        s.run,
        s.label
            .as_deref()
            .map(|l| format!(" ({l})"))
            .unwrap_or_default(),
        s.seed
            .map(|x| format!(", seed {x}"))
            .unwrap_or_default(),
        s.records,
        s.stages.iter().cloned().collect::<Vec<_>>().join(", "),
    ));

    out.push_str("\nerror budget (per-stage attribution):\n");
    out.push_str(&format!(
        "  core    analytic eps_r      {}  (tolerance eps {}, accepted {})\n",
        fmt_opt(s.epsilon_r),
        fmt_opt(s.epsilon),
        s.accepted.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
    ));
    if let (Some(er), Some(e)) = (s.epsilon_r, s.epsilon) {
        if e > 0.0 {
            out.push_str(&format!(
                "          budget used         {:.1} %\n",
                100.0 * er / e
            ));
        }
    }
    for q in &s.admm {
        out.push_str(&format!(
            "  convopt {:<18} feasibility {} (worst_row_std / radius)\n",
            q.name,
            fmt_opt(q.feasibility)
        ));
    }
    out.push_str(&format!(
        "  eval    measured e1         {}  (e2 {})\n",
        fmt_opt(s.e1),
        fmt_opt(s.e2)
    ));
    if let (Some(e1), Some(er)) = (s.e1, s.epsilon_r) {
        if er > 0.0 {
            out.push_str(&format!(
                "          bound slack         {:.2}x (analytic bound / measured)\n",
                er / e1.max(1e-300)
            ));
        }
    }
    if s.avg_phi.is_some() || s.decisiveness.is_some() {
        out.push_str(&format!(
            "  eval    guard-band phi      {} ps, decisiveness {}\n",
            fmt_opt(s.avg_phi),
            fmt_opt(s.decisiveness)
        ));
    }

    out.push_str(&format!(
        "\nrank: numerical {} | effective {} | r-decrement evaluations {}\n",
        fmt_opt(s.rank),
        fmt_opt(s.effective_rank),
        s.decrement_steps
    ));

    if !s.conditioning.is_empty() {
        out.push_str(&format!("\ntop-{top_k} ill-conditioned factorizations:\n"));
        for c in s.conditioning.iter().take(top_k) {
            out.push_str(&format!(
                "  #{:<6} {:<12} cond ~ {:.3e}\n",
                c.seq, c.name, c.cond
            ));
        }
    }

    if !s.admm.is_empty() {
        out.push_str("\nADMM convergence quality:\n");
        for q in &s.admm {
            out.push_str(&format!(
                "  {:<18} {} iters (to tolerance: {}), primal {:.3e}, dual {:.3e}{}{}\n",
                q.name,
                q.iterations,
                q.iters_to_tol
                    .map(|i| i.to_string())
                    .unwrap_or_else(|| "-".into()),
                q.primal,
                q.dual,
                if q.converged { "" } else { " [UNCONVERGED]" },
                if q.stalled { " [STALLED]" } else { "" },
            ));
        }
    }

    if !s.unknown_kinds.is_empty() {
        out.push_str("\nrecord kinds this doctor has no analysis for (informational):\n");
        for (kind, n) in &s.unknown_kinds {
            out.push_str(&format!("  {kind} x{n}\n"));
        }
    }
    out
}

/// One metric comparison between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffFinding {
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub a: f64,
    /// Candidate value.
    pub b: f64,
    /// `b / a` (guarded for zero baselines).
    pub ratio: f64,
    /// Whether this finding breaches its threshold.
    pub breach: bool,
    /// Human explanation, causal where the ledger supports it.
    pub note: String,
}

fn ratio(a: f64, b: f64) -> f64 {
    if a.abs() < 1e-300 {
        if b.abs() < 1e-300 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        b / a
    }
}

/// Compares a `candidate` run against a `baseline` run under `t`,
/// producing one finding per comparable metric. A finding only breaches
/// when both sides carry the metric — a missing stage is reported in
/// [`missing_stages`] instead.
pub fn diff(baseline: &RunSummary, candidate: &RunSummary, t: &HealthThresholds) -> Vec<DiffFinding> {
    let mut out = Vec::new();
    let rank_note = match (baseline.effective_rank, candidate.effective_rank) {
        (Some(ra), Some(rb)) if ra != rb => {
            format!(" while effective rank {} from {:.0} to {:.0}",
                if rb < ra { "dropped" } else { "rose" }, ra, rb)
        }
        _ => String::new(),
    };
    if let (Some(a), Some(b)) = (baseline.epsilon_r, candidate.epsilon_r) {
        let r = ratio(a, b);
        out.push(DiffFinding {
            metric: "epsilon_r".into(),
            a,
            b,
            ratio: r,
            breach: r > t.max_eps_growth,
            note: format!("analytic worst-case error eps_wc grew {r:.2}x{rank_note}"),
        });
    }
    if let (Some(a), Some(b)) = (baseline.e1, candidate.e1) {
        let r = ratio(a, b);
        out.push(DiffFinding {
            metric: "e1".into(),
            a,
            b,
            ratio: r,
            breach: r > t.max_e1_growth,
            note: format!("measured Monte-Carlo error e1 grew {r:.2}x"),
        });
    }
    let worst_cond = |s: &RunSummary| s.conditioning.first().map(|c| c.cond);
    if let (Some(a), Some(b)) = (worst_cond(baseline), worst_cond(candidate)) {
        let r = ratio(a, b);
        out.push(DiffFinding {
            metric: "worst_cond".into(),
            a,
            b,
            ratio: r,
            breach: r > t.max_cond_growth,
            note: format!("worst condition estimate grew {r:.2}x"),
        });
    }
    if let (Some(a), Some(b)) = (baseline.effective_rank, candidate.effective_rank) {
        let r = ratio(a, b);
        out.push(DiffFinding {
            metric: "effective_rank".into(),
            a,
            b,
            ratio: r,
            breach: r < t.min_rank_ratio,
            note: format!("effective rank ratio {r:.2} (model expressiveness)"),
        });
    }
    let stalls = |s: &RunSummary| s.admm.iter().filter(|q| q.stalled).count() as f64;
    let (sa, sb) = (stalls(baseline), stalls(candidate));
    if !baseline.admm.is_empty() || !candidate.admm.is_empty() {
        out.push(DiffFinding {
            metric: "admm_stalls".into(),
            a: sa,
            b: sb,
            ratio: ratio(sa.max(1.0), sb.max(1.0)),
            breach: sb > sa,
            note: format!("stalled ADMM solves: {sa:.0} -> {sb:.0}"),
        });
    }
    out
}

/// Stages present in `baseline` but absent from `candidate` — a silent
/// coverage regression the metric diff cannot see.
pub fn missing_stages(baseline: &RunSummary, candidate: &RunSummary) -> Vec<String> {
    baseline
        .stages
        .difference(&candidate.stages)
        .cloned()
        .collect()
}

/// Whether any finding breached its threshold.
pub fn has_breach(findings: &[DiffFinding]) -> bool {
    findings.iter().any(|f| f.breach)
}

/// Renders the diff table plus per-finding notes for breaches.
pub fn render_diff(findings: &[DiffFinding]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>8}  verdict\n",
        "METRIC", "baseline", "candidate", "ratio"
    ));
    for f in findings {
        out.push_str(&format!(
            "{:<16} {:>12.4e} {:>12.4e} {:>8.2}  {}\n",
            f.metric,
            f.a,
            f.b,
            f.ratio,
            if f.breach { "BREACH" } else { "ok" }
        ));
    }
    for f in findings.iter().filter(|f| f.breach) {
        out.push_str(&format!("breach: {}\n", f.note));
    }
    out
}

/// Self-test hook for the accuracy gate: perturbs a summary the way a
/// genuine rank-collapse regression would look (effective rank halved,
/// analytic and measured errors tripled), proving the thresholds trip.
pub fn inject_rank_drop(s: &mut RunSummary) {
    s.effective_rank = s.effective_rank.map(|r| (r * 0.5).max(1.0));
    s.epsilon_r = s.epsilon_r.map(|e| e * 3.0);
    s.e1 = s.e1.map(|e| e * 3.0);
}

/// Sketch-vs-dense parity attribution on a small instance
/// (`pathrep-doctor --sketch-parity`).
///
/// Runs the full dense pipeline and the full sparse/sketched pipeline on
/// the *same* circuit, paths and variation model, then attributes any
/// divergence to its layer: CSR assembly (must be exact — the sparse
/// builder is bit-compatible with the dense one), the sketched subspace
/// (energy capture), Algorithm-2 selection (set agreement) and the
/// Theorem-2 error `ε_r` / guard-band `φ = ε_r·T_cons` (within absolute
/// tolerance). Any violated bound lands in `findings`.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchParityReport {
    /// `|P_tar|` of the shared instance.
    pub paths: usize,
    /// Variation-space dimension.
    pub variables: usize,
    /// Stored entries of the CSR `A`.
    pub nnz: usize,
    /// `max |A_dense − A_sparse|` over all entries (CSR assembly parity).
    pub max_assembly_diff: f64,
    /// Spectral-energy fraction captured by the sketch.
    pub energy_capture: f64,
    /// Numerical rank from the dense SVD.
    pub rank_dense: usize,
    /// Numerical rank from the sketched SVD.
    pub rank_sketch: usize,
    /// Exact-mode selection-set agreement (`|∩| / max(|·|,|·|)`),
    /// measured over the effective-rank prefix of the pivot sequence —
    /// full-rank tail pivots sit in near-degenerate noise directions
    /// where pivot order is tie-sensitive between two orthogonally
    /// equivalent bases.
    pub exact_agreement: f64,
    /// Approx-mode (Algorithm 1) selection-set agreement.
    pub approx_agreement: f64,
    /// Dense Algorithm-1 worst-case error.
    pub dense_epsilon_r: f64,
    /// Sketched Algorithm-1 worst-case error.
    pub sketch_epsilon_r: f64,
    /// Guard-band gap `|Δε_r|·T_cons` in ps.
    pub phi_diff_ps: f64,
    /// Violated parity bounds; empty means PASS.
    pub findings: Vec<String>,
}

impl SketchParityReport {
    /// `true` when every parity bound held.
    pub fn pass(&self) -> bool {
        self.findings.is_empty()
    }
}

fn set_agreement(a: &[usize], b: &[usize]) -> f64 {
    let sa: BTreeSet<usize> = a.iter().copied().collect();
    let sb: BTreeSet<usize> = b.iter().copied().collect();
    let denom = sa.len().max(sb.len());
    if denom == 0 {
        return 1.0;
    }
    sa.intersection(&sb).count() as f64 / denom as f64
}

/// Runs the parity experiment on the shared small gate instance. The
/// sketch is given full width (`l = |P_tar|`), so the subspace is exact
/// and every divergence is attributable to the pipeline mechanics —
/// sparse assembly, range-finder, reduced pivoted QR, thin cross-Gram —
/// rather than to low-rank truncation.
///
/// # Panics
///
/// Panics when a deterministic pipeline stage fails (cannot happen for
/// the built-in instance).
pub fn sketch_parity_check() -> SketchParityReport {
    use pathrep_core::approx::{approx_select, ApproxConfig};
    use pathrep_core::exact::exact_select;
    use pathrep_core::predictor::DEFAULT_KAPPA;
    use pathrep_core::sketch::{sketch_approx_select, sketch_exact_select, SketchApproxConfig};
    use pathrep_linalg::sketch::SketchConfig;
    use pathrep_ssta::SparseDelayModel;

    const EPSILON: f64 = 0.05;
    const MIN_AGREEMENT: f64 = 0.9;
    const MAX_EPS_DIFF: f64 = 1e-6;

    let pb = crate::prepared_small(crate::workloads::GATE_SEED);
    let dense = &pb.delay_model;
    let sparse = SparseDelayModel::build(&pb.circuit, &pb.paths, &pb.decomposition, &pb.model)
        .expect("sparse assembly succeeds on the gate instance");

    let mut findings = Vec::new();

    // Layer 1: CSR assembly parity. The sparse builder shares the dense
    // builder's accumulation order, so this must be exactly zero.
    let da = dense.a();
    let sa = sparse.a().to_dense();
    let mut max_assembly_diff = 0.0f64;
    for (x, y) in da.as_slice().iter().zip(sa.as_slice()) {
        max_assembly_diff = max_assembly_diff.max((x - y).abs());
    }
    if max_assembly_diff != 0.0 {
        findings.push(format!(
            "CSR assembly diverges from the dense builder: max |ΔA| = {max_assembly_diff:.3e} \
             (expected exactly 0)"
        ));
    }

    // Layer 2 + 3: full-width sketch, then selection agreement.
    let sketch = SketchConfig {
        sketch_cols: sparse.a().nrows(),
        ..SketchConfig::default()
    };
    let d_exact = exact_select(da, dense.mu_paths(), DEFAULT_KAPPA).expect("dense exact");
    let s_exact = sketch_exact_select(sparse.a(), sparse.mu_paths(), DEFAULT_KAPPA, &sketch)
        .expect("sketched exact");
    if s_exact.energy_capture < 0.999 {
        findings.push(format!(
            "full-width sketch lost spectral energy: capture {:.6} < 0.999",
            s_exact.energy_capture
        ));
    }
    if s_exact.rank != d_exact.rank {
        findings.push(format!(
            "sketched rank {} != dense rank {}",
            s_exact.rank, d_exact.rank
        ));
    }
    let d_approx = approx_select(da, dense.mu_paths(), &ApproxConfig::new(EPSILON, pb.t_cons))
        .expect("dense approx");
    let mut s_cfg = SketchApproxConfig::new(EPSILON, pb.t_cons);
    s_cfg.sketch = sketch;
    let s_approx =
        sketch_approx_select(sparse.a(), sparse.mu_paths(), &s_cfg).expect("sketched approx");
    let approx_agreement = set_agreement(&d_approx.selected, &s_approx.selected);
    if approx_agreement < MIN_AGREEMENT {
        findings.push(format!(
            "approx-mode selection agreement {approx_agreement:.3} < {MIN_AGREEMENT}"
        ));
    }

    // Exact-mode parity is judged over the effective-rank head of the
    // pivot sequence. Beyond the effective rank the singular directions
    // are near-degenerate, so the pivoted QR may order tied columns
    // differently for the dense U and the (orthogonally equivalent)
    // sketched U — that tail disagreement carries no predictive weight,
    // as the bitwise `ε_r` parity in layer 4 confirms.
    let head = d_approx
        .effective_rank
        .min(d_exact.selected.len())
        .min(s_exact.selected.len());
    let exact_agreement = set_agreement(&d_exact.selected[..head], &s_exact.selected[..head]);
    if exact_agreement < MIN_AGREEMENT {
        findings.push(format!(
            "exact-mode selection agreement {exact_agreement:.3} < {MIN_AGREEMENT} \
             over the first {head} pivots"
        ));
    }

    // Layer 4: Theorem-2 error and guard-band parity.
    let eps_diff = (d_approx.epsilon_r - s_approx.epsilon_r).abs();
    let phi_diff_ps = eps_diff * pb.t_cons;
    if eps_diff > MAX_EPS_DIFF {
        findings.push(format!(
            "epsilon_r diverged: dense {:.6e} vs sketch {:.6e} (|Δ| {eps_diff:.3e} > {MAX_EPS_DIFF:.0e})",
            d_approx.epsilon_r, s_approx.epsilon_r
        ));
    }

    SketchParityReport {
        paths: pb.path_count(),
        variables: sparse.variable_count(),
        nnz: sparse.a().nnz(),
        max_assembly_diff,
        energy_capture: s_exact.energy_capture,
        rank_dense: d_exact.rank,
        rank_sketch: s_exact.rank,
        exact_agreement,
        approx_agreement,
        dense_epsilon_r: d_approx.epsilon_r,
        sketch_epsilon_r: s_approx.epsilon_r,
        phi_diff_ps,
        findings,
    }
}

/// Renders the parity report, findings last.
pub fn render_sketch_parity(r: &SketchParityReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "sketch-vs-dense parity ({} paths × {} vars, nnz {}):\n",
        r.paths, r.variables, r.nnz
    ));
    out.push_str(&format!(
        "  assembly   max |ΔA| {:.3e} (CSR vs dense builder)\n",
        r.max_assembly_diff
    ));
    out.push_str(&format!(
        "  sketch     energy capture {:.6}, rank {} vs dense {}\n",
        r.energy_capture, r.rank_sketch, r.rank_dense
    ));
    out.push_str(&format!(
        "  selection  agreement exact(head) {:.3}, approx {:.3}\n",
        r.exact_agreement, r.approx_agreement
    ));
    out.push_str(&format!(
        "  error      epsilon_r dense {:.6e} vs sketch {:.6e} (phi gap {:.3e} ps)\n",
        r.dense_epsilon_r, r.sketch_epsilon_r, r.phi_diff_ps
    ));
    if r.pass() {
        out.push_str("sketch parity: PASS\n");
    } else {
        for f in &r.findings {
            out.push_str(&format!("sketch parity: FAIL — {f}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathrep_obs::ledger::parse_jsonl;

    fn sample_ledger() -> String {
        let mk = |seq: u64, stage: &str, name: &str, facts: &str| {
            format!(
                "{{\"schema_version\":1,\"seq\":{seq},\"run\":\"pid1-t\",\"seed\":11,\
                 \"stage\":\"{stage}\",\"name\":\"{name}\",\"facts\":{facts}}}"
            )
        };
        [
            mk(0, "meta", "run_context", "{\"label\":\"t\",\"seed\":11}"),
            mk(1, "linalg", "svd", "{\"cond\":125.0,\"smax\":5.0,\"smin\":0.04}"),
            mk(2, "linalg", "qr_pivoted", "{\"pivot_decay\":0.01}"),
            mk(
                3,
                "convopt",
                "admm_linearized",
                "{\"iterations\":4,\"converged\":true,\"primal_residual\":0.001,\
                 \"dual_residual\":0.002,\"worst_row_std\":0.5,\"radius\":1.0,\
                 \"primal_curve\":[0.1,0.01,0.002,0.001],\"dual_curve\":[0.2,0.02,0.004,0.002]}",
            ),
            mk(
                4,
                "core",
                "approx_select",
                "{\"rank\":40,\"effective_rank\":28,\"selected\":30,\"epsilon_r\":0.03,\
                 \"epsilon\":0.05,\"accepted\":true,\"r_trace\":[40,35,30],\
                 \"epsilon_r_trace\":[0.001,0.01,0.03]}",
            ),
            mk(5, "eval", "mc_evaluate", "{\"e1\":0.012,\"e2\":0.004,\"samples\":100}"),
            mk(6, "eval", "guardband", "{\"avg_phi\":12.5,\"decisiveness\":0.97}"),
        ]
        .join("\n")
    }

    #[test]
    fn summarize_extracts_every_stage() {
        let s = summarize(&parse_jsonl(&sample_ledger()).unwrap());
        assert_eq!(s.label.as_deref(), Some("t"));
        assert_eq!(s.seed, Some(11));
        assert_eq!(s.records, 7);
        assert_eq!(s.effective_rank, Some(28.0));
        assert_eq!(s.epsilon_r, Some(0.03));
        assert_eq!(s.e1, Some(0.012));
        assert_eq!(s.avg_phi, Some(12.5));
        assert_eq!(s.decrement_steps, 3);
        // qr pivot decay 0.01 → cond estimate 100; svd cond 125 is worst.
        assert_eq!(s.conditioning[0].cond, 125.0);
        assert_eq!(s.admm.len(), 1);
        assert!(s.admm[0].converged);
        assert!(!s.admm[0].stalled);
        assert_eq!(s.admm[0].iters_to_tol, Some(4));
        let text = render_summary(&s, 3);
        assert!(text.contains("error budget"));
        assert!(text.contains("admm_linearized"));
    }

    #[test]
    fn unknown_record_kinds_are_reported_not_fatal() {
        // A ledger written by a newer library (pathrep-serve) carries a
        // `serve/model_load` record the doctor has no analysis for. It
        // must be surfaced — never silently skipped, never a failure.
        let mut ledger = sample_ledger();
        ledger.push('\n');
        ledger.push_str(
            "{\"schema_version\":1,\"seq\":7,\"run\":\"pid1-t\",\"seed\":11,\
             \"stage\":\"serve\",\"name\":\"model_load\",\
             \"facts\":{\"model\":\"1fb78fd0563c16f0\",\"label\":\"quickstart\",\
             \"targets\":3,\"measurements\":1}}",
        );
        let s = summarize(&parse_jsonl(&ledger).unwrap());
        assert_eq!(s.records, 8, "the unknown record still counts");
        assert_eq!(s.unknown_kinds.get("serve/model_load"), Some(&1));
        assert!(s.stages.contains("serve"), "stage coverage includes serve");
        // Known metrics are untouched by the extra record.
        assert_eq!(s.epsilon_r, Some(0.03));
        assert_eq!(s.e1, Some(0.012));
        // Rendering mentions it, and diffing two such runs never breaches
        // on it — unknown kinds are informational by construction.
        let text = render_summary(&s, 3);
        assert!(text.contains("serve/model_load x1"), "{text}");
        let findings = diff(&s, &s.clone(), &HealthThresholds::default());
        assert!(!has_breach(&findings), "{findings:?}");
    }

    #[test]
    fn identical_runs_do_not_breach() {
        let s = summarize(&parse_jsonl(&sample_ledger()).unwrap());
        let findings = diff(&s, &s.clone(), &HealthThresholds::default());
        assert!(!findings.is_empty());
        assert!(!has_breach(&findings), "{findings:?}");
        assert!(missing_stages(&s, &s).is_empty());
    }

    #[test]
    fn injected_rank_drop_breaches() {
        let a = summarize(&parse_jsonl(&sample_ledger()).unwrap());
        let mut b = a.clone();
        inject_rank_drop(&mut b);
        let findings = diff(&a, &b, &HealthThresholds::default());
        assert!(has_breach(&findings));
        let eps = findings.iter().find(|f| f.metric == "epsilon_r").unwrap();
        assert!(eps.breach);
        assert!(eps.note.contains("dropped"), "{}", eps.note);
        let rank = findings.iter().find(|f| f.metric == "effective_rank").unwrap();
        assert!(rank.breach);
        assert!(render_diff(&findings).contains("BREACH"));
    }

    #[test]
    fn stall_detection_flags_flat_unconverged_curves() {
        let flat: Vec<f64> = (0..40).map(|i| 1.0 - 0.001 * i as f64).collect();
        let falling: Vec<f64> = (0..40).map(|i| 0.9_f64.powi(i)).collect();
        let mk = |curve: &[f64], converged: bool| {
            let body = format!(
                "{{\"schema_version\":1,\"seq\":0,\"run\":\"r\",\"seed\":null,\
                 \"stage\":\"convopt\",\"name\":\"admm_linearized\",\"facts\":{{\
                 \"iterations\":{},\"converged\":{converged},\
                 \"primal_residual\":{},\"dual_residual\":0.1,\
                 \"primal_curve\":{curve_json}}}}}",
                curve.len(),
                curve.last().unwrap(),
                curve_json = pathrep_obs::json::JsonValue::Array(
                    curve.iter().map(|&v| pathrep_obs::json::JsonValue::Number(v)).collect()
                )
                .render(),
            );
            summarize(&parse_jsonl(&body).unwrap()).admm[0].clone()
        };
        assert!(mk(&flat, false).stalled);
        assert!(!mk(&falling, false).stalled, "steadily-falling curve is not a stall");
        assert!(!mk(&flat, true).stalled, "converged solves never stall");
    }

    #[test]
    fn sketch_parity_holds_on_gate_instance() {
        let report = sketch_parity_check();
        assert!(
            report.pass(),
            "sketch parity violated:\n{}",
            render_sketch_parity(&report)
        );
        assert_eq!(report.max_assembly_diff, 0.0);
        assert_eq!(report.rank_dense, report.rank_sketch);
        assert_eq!(report.dense_epsilon_r, report.sketch_epsilon_r);
        assert!(render_sketch_parity(&report).ends_with("sketch parity: PASS\n"));
    }

    #[test]
    fn set_agreement_handles_empty_and_disjoint_sets() {
        assert_eq!(set_agreement(&[], &[]), 1.0);
        assert_eq!(set_agreement(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(set_agreement(&[1, 2, 3], &[2, 3]), 2.0 / 3.0);
    }
}
