//! The perf-regression gate: `BENCH_*.json` schema, serialization and the
//! baseline diff that decides pass/fail.
//!
//! A [`BenchReport`] is what one `perf_gate` run writes to the repo root:
//! per-workload p50/p95 wall times plus the exact operation counters
//! (SVD sweeps, QR pivots, ADMM iterations, …) collected from the
//! `pathrep-obs` registry. Because every workload runs with fixed RNG
//! seeds, counter diffs between two reports are exact — a changed counter
//! means the algorithm did different work, not that the machine was noisy.

use pathrep_obs::json::{self, JsonValue};
use pathrep_obs::selftime::ProfileEntry;
use std::collections::BTreeMap;

/// Version stamp of the `BENCH_*.json` layout. Bump on breaking changes so
/// the diff can refuse incomparable baselines.
pub const SCHEMA_VERSION: u64 = 1;

/// Relative p50 slowdown tolerated before the gate fails (25 %).
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// Measured result of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Workload name (stable across runs; the diff joins on it).
    pub name: String,
    /// Median wall time over the repeats, in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile wall time, in milliseconds.
    pub p95_ms: f64,
    /// 99.9th-percentile wall time in milliseconds, from the HDR latency
    /// machinery. `None` in baselines written before the field existed —
    /// the parse is lenient so old `BENCH_*.json` files stay loadable.
    pub p999_ms: Option<f64>,
    /// Sustained throughput in rows (predictions) per second, for
    /// workloads that report it via the `bench.rows_per_sec` gauge
    /// (median over repeats). `None` for workloads without a throughput
    /// notion and in baselines written before the field existed — the
    /// parse is lenient and serialization omits `None`, so old
    /// `BENCH_*.json` files stay loadable and byte-stable.
    pub rows_per_sec: Option<f64>,
    /// Deterministic operation counters from the obs registry.
    pub counters: BTreeMap<String, u64>,
    /// Inclusive/exclusive span profile of the final measured repeat
    /// (see [`pathrep_obs::selftime`]). Empty in baselines written before
    /// the field existed — the parse is lenient and serialization omits
    /// an empty profile, so old `BENCH_*.json` files stay loadable and
    /// byte-stable.
    pub profile: Vec<ProfileEntry>,
}

/// One `BENCH_*.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// [`SCHEMA_VERSION`] at write time.
    pub schema_version: u64,
    /// Git commit the run was taken at (short hash, or `"unknown"`).
    pub commit: String,
    /// Environment fingerprint at measurement time (cpu count, thread
    /// setting, load average, kernel) — see [`environment_fingerprint`].
    /// Empty in baselines written before the field existed; the parse is
    /// lenient and serialization omits an empty map, so old
    /// `BENCH_*.json` files stay loadable and byte-stable.
    pub env: BTreeMap<String, String>,
    /// Per-workload results, in matrix order.
    pub workloads: Vec<WorkloadResult>,
}

/// Captures the measurement environment: `cpus` (available parallelism),
/// `pathrep_threads` (the `PATHREP_THREADS` setting, or `default`),
/// `loadavg` (the 1/5/15-minute triple) and `kernel` (release string).
/// A perf diff across machines or against a loaded box is noise — the
/// fingerprint travels with the numbers so the gate can say so.
pub fn environment_fingerprint() -> BTreeMap<String, String> {
    let mut env = BTreeMap::new();
    if let Ok(n) = std::thread::available_parallelism() {
        env.insert("cpus".to_owned(), n.get().to_string());
    }
    env.insert(
        "pathrep_threads".to_owned(),
        std::env::var("PATHREP_THREADS")
            .ok()
            .filter(|v| !v.trim().is_empty())
            .unwrap_or_else(|| "default".to_owned()),
    );
    if let Ok(raw) = std::fs::read_to_string("/proc/loadavg") {
        let triple: Vec<&str> = raw.split_whitespace().take(3).collect();
        if triple.len() == 3 {
            env.insert("loadavg".to_owned(), triple.join(" "));
        }
    }
    if let Ok(release) = std::fs::read_to_string("/proc/sys/kernel/osrelease") {
        env.insert("kernel".to_owned(), release.trim().to_owned());
    }
    env
}

impl BenchReport {
    /// Serializes the report as pretty-enough single-line JSON.
    pub fn to_json(&self) -> String {
        let mut top = vec![
            (
                "schema_version".to_owned(),
                JsonValue::Number(self.schema_version as f64),
            ),
            ("commit".into(), JsonValue::String(self.commit.clone())),
        ];
        if !self.env.is_empty() {
            top.push((
                "env".into(),
                JsonValue::Object(
                    self.env
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::String(v.clone())))
                        .collect(),
                ),
            ));
        }
        top.push((
                "workloads".into(),
                JsonValue::Array(
                    self.workloads
                        .iter()
                        .map(|w| {
                            let mut fields = vec![
                                ("name".into(), JsonValue::String(w.name.clone())),
                                ("p50_ms".into(), JsonValue::Number(w.p50_ms)),
                                ("p95_ms".into(), JsonValue::Number(w.p95_ms)),
                            ];
                            if let Some(p999) = w.p999_ms {
                                fields.push(("p999_ms".into(), JsonValue::Number(p999)));
                            }
                            if let Some(rate) = w.rows_per_sec {
                                fields.push(("rows_per_sec".into(), JsonValue::Number(rate)));
                            }
                            fields.push((
                                "counters".into(),
                                JsonValue::Object(
                                    w.counters
                                        .iter()
                                        .map(|(k, &v)| (k.clone(), JsonValue::Number(v as f64)))
                                        .collect(),
                                ),
                            ));
                            if !w.profile.is_empty() {
                                fields.push((
                                    "profile".into(),
                                    JsonValue::Array(
                                        w.profile
                                            .iter()
                                            .map(|e| {
                                                JsonValue::Object(vec![
                                                    (
                                                        "path".into(),
                                                        JsonValue::String(e.path.clone()),
                                                    ),
                                                    (
                                                        "count".into(),
                                                        JsonValue::Number(e.count as f64),
                                                    ),
                                                    (
                                                        "total_ns".into(),
                                                        JsonValue::Number(e.total_ns as f64),
                                                    ),
                                                    (
                                                        "self_ns".into(),
                                                        JsonValue::Number(e.self_ns as f64),
                                                    ),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ));
                            }
                            JsonValue::Object(fields)
                        })
                        .collect(),
                ),
            ));
        JsonValue::Object(top).render()
    }

    /// Parses a report written by [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct, including a
    /// schema-version mismatch.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = json::parse(text)?;
        let schema_version = v.field("schema_version")?.number()? as u64;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "baseline schema_version {schema_version} is not the supported \
                 {SCHEMA_VERSION} — regenerate the baseline"
            ));
        }
        let workloads = v
            .field("workloads")?
            .array()?
            .iter()
            .map(|w| {
                // Lenient: absent in pre-counter baselines (shows up as
                // all-new counter deltas in the diff, never as a crash).
                let counters = match w.field("counters") {
                    Err(_) => BTreeMap::new(),
                    Ok(JsonValue::Object(fields)) => fields
                        .iter()
                        .map(|(k, v)| Ok((k.clone(), v.number()? as u64)))
                        .collect::<Result<BTreeMap<_, _>, String>>()?,
                    Ok(_) => return Err("counters must be an object".into()),
                };
                // Lenient: absent in pre-profile baselines.
                let profile = match w.field("profile") {
                    Err(_) => Vec::new(),
                    Ok(JsonValue::Array(rows)) => rows
                        .iter()
                        .map(|e| {
                            Ok(ProfileEntry {
                                path: e.field("path")?.string()?,
                                count: e.field("count")?.number()? as u64,
                                total_ns: e.field("total_ns")?.number()? as u64,
                                self_ns: e.field("self_ns")?.number()? as u64,
                            })
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                    Ok(_) => return Err("profile must be an array".into()),
                };
                Ok(WorkloadResult {
                    name: w.field("name")?.string()?,
                    p50_ms: w.field("p50_ms")?.number()?,
                    p95_ms: w.field("p95_ms")?.number()?,
                    // Lenient: absent in pre-p999 baselines.
                    p999_ms: w.field("p999_ms").ok().and_then(|f| f.number().ok()),
                    // Lenient: absent in pre-throughput baselines.
                    rows_per_sec: w.field("rows_per_sec").ok().and_then(|f| f.number().ok()),
                    counters,
                    profile,
                })
            })
            .collect::<Result<_, String>>()?;
        // Lenient: absent in pre-fingerprint baselines.
        let env = match v.field("env") {
            Err(_) => BTreeMap::new(),
            Ok(JsonValue::Object(fields)) => fields
                .iter()
                .filter_map(|(k, v)| v.string().ok().map(|s| (k.clone(), s)))
                .collect(),
            Ok(_) => return Err("env must be an object".into()),
        };
        Ok(BenchReport {
            schema_version,
            // Lenient: absent in hand-trimmed baselines; the commit is
            // informational (report headers), never part of the gate.
            commit: v
                .field("commit")
                .ok()
                .and_then(|f| f.string().ok())
                .unwrap_or_else(|| "(unknown)".into()),
            env,
            workloads,
        })
    }
}

/// Verdict of one workload's baseline comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// p50 within the threshold band.
    Ok,
    /// p50 shrank beyond the threshold.
    Improved,
    /// p50 grew beyond the threshold — the gate fails.
    Regressed,
    /// Present now, absent in the baseline (informational).
    New,
    /// Present in the baseline, absent now (informational, surfaced so a
    /// silently dropped workload cannot hide a regression).
    Removed,
}

impl Verdict {
    /// Stable display tag.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::New => "new",
            Verdict::Removed => "removed",
        }
    }
}

/// One row of the comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Workload name.
    pub name: String,
    /// Baseline p50 (ms), when present.
    pub baseline_p50_ms: Option<f64>,
    /// Current p50 (ms), when present.
    pub current_p50_ms: Option<f64>,
    /// `current / baseline`, when both sides exist.
    pub ratio: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
    /// Counters whose values changed: `name → (baseline, current)`.
    pub counter_deltas: BTreeMap<String, (u64, u64)>,
}

/// Compares `current` against `baseline` workload-by-workload. A workload
/// regresses when its p50 grows by more than `threshold` (relative, e.g.
/// `0.25` = 25 %); it counts as improved when it shrinks by the same
/// margin. Rows come back in current-report order, then removed ones.
pub fn diff(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> Vec<DiffRow> {
    let base_by_name: BTreeMap<&str, &WorkloadResult> = baseline
        .workloads
        .iter()
        .map(|w| (w.name.as_str(), w))
        .collect();
    let mut rows = Vec::new();
    for cur in &current.workloads {
        match base_by_name.get(cur.name.as_str()) {
            None => rows.push(DiffRow {
                name: cur.name.clone(),
                baseline_p50_ms: None,
                current_p50_ms: Some(cur.p50_ms),
                ratio: None,
                verdict: Verdict::New,
                counter_deltas: BTreeMap::new(),
            }),
            Some(base) => {
                let ratio = if base.p50_ms > 0.0 {
                    cur.p50_ms / base.p50_ms
                } else {
                    1.0
                };
                let verdict = if ratio > 1.0 + threshold {
                    Verdict::Regressed
                } else if ratio < 1.0 - threshold {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                let mut counter_deltas = BTreeMap::new();
                for (k, &b) in &base.counters {
                    let c = cur.counters.get(k).copied().unwrap_or(0);
                    if c != b {
                        counter_deltas.insert(k.clone(), (b, c));
                    }
                }
                for (k, &c) in &cur.counters {
                    if !base.counters.contains_key(k) {
                        counter_deltas.insert(k.clone(), (0, c));
                    }
                }
                rows.push(DiffRow {
                    name: cur.name.clone(),
                    baseline_p50_ms: Some(base.p50_ms),
                    current_p50_ms: Some(cur.p50_ms),
                    ratio: Some(ratio),
                    verdict,
                    counter_deltas,
                });
            }
        }
    }
    let current_names: BTreeMap<&str, ()> = current
        .workloads
        .iter()
        .map(|w| (w.name.as_str(), ()))
        .collect();
    for base in &baseline.workloads {
        if !current_names.contains_key(base.name.as_str()) {
            rows.push(DiffRow {
                name: base.name.clone(),
                baseline_p50_ms: Some(base.p50_ms),
                current_p50_ms: None,
                ratio: None,
                verdict: Verdict::Removed,
                counter_deltas: BTreeMap::new(),
            });
        }
    }
    rows
}

/// Whether any row fails the gate.
pub fn has_regression(rows: &[DiffRow]) -> bool {
    rows.iter().any(|r| r.verdict == Verdict::Regressed)
}

/// Renders the per-workload comparison table.
pub fn render_diff(rows: &[DiffRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>12} {:>12} {:>8}  {}",
        "workload", "base p50", "cur p50", "ratio", "verdict"
    );
    let fmt_ms = |v: Option<f64>| match v {
        Some(ms) => format!("{ms:.2} ms"),
        None => "—".to_owned(),
    };
    for r in rows {
        let ratio = match r.ratio {
            Some(x) => format!("{x:.2}×"),
            None => "—".to_owned(),
        };
        let _ = writeln!(
            out,
            "{:<20} {:>12} {:>12} {:>8}  {}",
            r.name,
            fmt_ms(r.baseline_p50_ms),
            fmt_ms(r.current_p50_ms),
            ratio,
            r.verdict.as_str(),
        );
        for (k, (b, c)) in &r.counter_deltas {
            let _ = writeln!(out, "{:<20}   counter {k}: {b} → {c}", "");
        }
    }
    out
}

/// Renders a baseline-vs-current environment comparison, one line per
/// fingerprint key, flagging every difference — so a "regression" taken
/// on a loaded or differently-sized box announces itself in the diff
/// output instead of masquerading as a code problem.
pub fn render_env_diff(
    baseline: &BTreeMap<String, String>,
    current: &BTreeMap<String, String>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let keys: std::collections::BTreeSet<&String> =
        baseline.keys().chain(current.keys()).collect();
    for k in keys {
        let b = baseline.get(k).map_or("—", String::as_str);
        let c = current.get(k).map_or("—", String::as_str);
        let mark = if b == c { "" } else { "  <- differs" };
        let _ = writeln!(out, "  env {k:<16} base: {b:<24} cur: {c}{mark}");
    }
    out
}

/// Verdict on whether a baseline comparison can be trusted, from the two
/// environment fingerprints (see [`assess_env`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EnvAssessment {
    /// When `true`, wall-time verdicts in the diff are suspect: the
    /// machine shape or its load differed between the two runs.
    pub unreliable: bool,
    /// Human-readable reasons, one per mismatch.
    pub reasons: Vec<String>,
}

/// How far the 1-minute load average may drift between baseline and
/// current before the comparison is declared unreliable.
pub const LOADAVG_TOLERANCE: f64 = 1.0;

/// Judges whether `current` was measured in an environment comparable to
/// `baseline`: a different cpu count, kernel or `PATHREP_THREADS` setting,
/// or a 1-minute load average drifted by more than [`LOADAVG_TOLERANCE`],
/// makes wall-time comparisons unreliable (exact counters stay valid).
/// Fingerprint-less sides (old baselines) compare as reliable — there is
/// nothing to contradict.
pub fn assess_env(
    baseline: &BTreeMap<String, String>,
    current: &BTreeMap<String, String>,
) -> EnvAssessment {
    let mut reasons = Vec::new();
    for key in ["cpus", "pathrep_threads", "kernel"] {
        if let (Some(b), Some(c)) = (baseline.get(key), current.get(key)) {
            if b != c {
                reasons.push(format!("{key} changed: {b} -> {c}"));
            }
        }
    }
    let load1 = |env: &BTreeMap<String, String>| -> Option<f64> {
        env.get("loadavg")?.split_whitespace().next()?.parse().ok()
    };
    if let (Some(b), Some(c)) = (load1(baseline), load1(current)) {
        if (b - c).abs() > LOADAVG_TOLERANCE {
            reasons.push(format!(
                "1-min loadavg drifted: {b:.2} -> {c:.2} (tolerance {LOADAVG_TOLERANCE:.1})"
            ));
        }
    }
    EnvAssessment {
        unreliable: !reasons.is_empty(),
        reasons,
    }
}

/// Interpolated percentile of already-measured wall times. `q` in `[0, 1]`.
pub fn percentile_ms(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted_ms.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted_ms[lo] + frac * (sorted_ms[hi] - sorted_ms[lo])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(name: &str, p50: f64, counters: &[(&str, u64)]) -> WorkloadResult {
        WorkloadResult {
            name: name.to_owned(),
            p50_ms: p50,
            p95_ms: p50 * 1.2,
            p999_ms: Some(p50 * 1.5),
            rows_per_sec: None,
            counters: counters
                .iter()
                .map(|&(k, v)| (k.to_owned(), v))
                .collect(),
            profile: Vec::new(),
        }
    }

    fn report(workloads: Vec<WorkloadResult>) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            commit: "abc1234".into(),
            env: BTreeMap::new(),
            workloads,
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report(vec![
            workload("exact_small", 12.5, &[("svd_sweeps", 9), ("qr_pivots", 40)]),
            workload("hybrid_medium", 310.25, &[("admm_iters", 128)]),
        ]);
        let back = BenchReport::from_json(&r.to_json()).expect("valid JSON");
        assert_eq!(back, r);
    }

    #[test]
    fn env_fingerprint_round_trips_and_empty_env_is_omitted() {
        let mut r = report(vec![workload("exact_small", 12.5, &[])]);
        // Empty fingerprint serializes exactly like the pre-env schema, so
        // regenerating an old baseline stays byte-stable.
        assert!(!r.to_json().contains("\"env\""));
        r.env.insert("cpus".into(), "8".into());
        r.env.insert("kernel".into(), "6.18.5".into());
        let back = BenchReport::from_json(&r.to_json()).expect("valid JSON");
        assert_eq!(back, r);
        assert_eq!(back.env.get("cpus").map(String::as_str), Some("8"));
    }

    #[test]
    fn env_diff_flags_differences_only() {
        let mut base = BTreeMap::new();
        base.insert("cpus".to_owned(), "8".to_owned());
        base.insert("kernel".to_owned(), "6.1".to_owned());
        let mut cur = base.clone();
        cur.insert("cpus".to_owned(), "4".to_owned());
        cur.insert("loadavg".to_owned(), "0.10 0.20 0.30".to_owned());
        let rendered = render_env_diff(&base, &cur);
        let differs: Vec<&str> =
            rendered.lines().filter(|l| l.ends_with("<- differs")).collect();
        assert_eq!(differs.len(), 2, "{rendered}");
        assert!(differs.iter().any(|l| l.contains("cpus")));
        assert!(differs.iter().any(|l| l.contains("loadavg")));
        assert!(!rendered
            .lines()
            .any(|l| l.contains("kernel") && l.contains("differs")));
    }

    #[test]
    fn baselines_without_p999_still_parse() {
        // The exact shape BENCH_1..4 were written in, before p999_ms.
        let text = r#"{"schema_version":1,"commit":"x","workloads":[
            {"name":"exact_small","p50_ms":12.5,"p95_ms":15.0,
             "counters":{"svd_sweeps":9}}]}"#;
        let r = BenchReport::from_json(text).expect("lenient parse");
        assert_eq!(r.workloads[0].p999_ms, None);
        assert_eq!(r.workloads[0].p50_ms, 12.5);
        // Re-serializing a p999-less workload emits no p999_ms field.
        assert!(!r.to_json().contains("p999_ms"));
    }

    #[test]
    fn rows_per_sec_round_trips_and_is_omitted_when_absent() {
        let mut r = report(vec![workload("serve_small", 12.5, &[])]);
        // Throughput-less workloads serialize exactly like the
        // pre-throughput schema, so old baselines stay byte-stable.
        assert!(!r.to_json().contains("rows_per_sec"));
        r.workloads[0].rows_per_sec = Some(52_000.25);
        let back = BenchReport::from_json(&r.to_json()).expect("valid JSON");
        assert_eq!(back, r);
        assert_eq!(back.workloads[0].rows_per_sec, Some(52_000.25));
    }

    #[test]
    fn profile_round_trips_and_empty_profile_is_omitted() {
        let mut r = report(vec![workload("exact_small", 12.5, &[])]);
        // Profile-less workloads serialize exactly like the pre-profile
        // schema, so regenerated old baselines stay byte-stable.
        assert!(!r.to_json().contains("\"profile\""));
        r.workloads[0].profile = vec![
            ProfileEntry {
                path: "exact_select".into(),
                count: 5,
                total_ns: 10_000,
                self_ns: 2_000,
            },
            ProfileEntry {
                path: "exact_select/qr_factor".into(),
                count: 40,
                total_ns: 8_000,
                self_ns: 8_000,
            },
        ];
        let back = BenchReport::from_json(&r.to_json()).expect("valid JSON");
        assert_eq!(back, r);
        assert_eq!(back.workloads[0].profile[1].leaf(), "qr_factor");
    }

    #[test]
    fn baselines_without_profile_still_parse() {
        let text = r#"{"schema_version":1,"commit":"x","workloads":[
            {"name":"exact_small","p50_ms":12.5,"p95_ms":15.0,
             "counters":{"svd_sweeps":9}}]}"#;
        let r = BenchReport::from_json(text).expect("lenient parse");
        assert!(r.workloads[0].profile.is_empty());
    }

    #[test]
    fn baselines_without_commit_or_counters_still_parse() {
        let text = r#"{"schema_version":1,"workloads":[
            {"name":"exact_small","p50_ms":12.5,"p95_ms":15.0}]}"#;
        let r = BenchReport::from_json(text).expect("lenient parse");
        assert_eq!(r.commit, "(unknown)");
        assert!(r.workloads[0].counters.is_empty());
        // The diff still runs against a counter-less baseline.
        let cur = report(vec![workload("exact_small", 12.5, &[("svd_sweeps", 9)])]);
        let rows = diff(&r, &cur, DEFAULT_THRESHOLD);
        assert_eq!(rows[0].verdict, Verdict::Ok);
    }

    #[test]
    fn committed_baseline_round_trips_byte_stable() {
        // The committed BENCH_6 baseline must survive parse → render
        // unchanged, byte for byte, or regenerated baselines churn in
        // review and `--baseline` comparisons silently drift.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");
        let text = std::fs::read_to_string(path).expect("BENCH_6.json is committed");
        let report = BenchReport::from_json(&text).expect("baseline parses");
        assert_eq!(report.to_json() + "\n", text, "round-trip is not byte-stable");
    }

    #[test]
    fn env_assessment_flags_shape_and_load_mismatches() {
        let mk = |cpus: &str, load: &str| -> BTreeMap<String, String> {
            [
                ("cpus".to_owned(), cpus.to_owned()),
                ("pathrep_threads".to_owned(), "default".to_owned()),
                ("kernel".to_owned(), "6.1".to_owned()),
                ("loadavg".to_owned(), load.to_owned()),
            ]
            .into_iter()
            .collect()
        };
        let base = mk("8", "0.50 0.40 0.30");
        assert!(!assess_env(&base, &base).unreliable);
        // Load drift within tolerance stays reliable.
        assert!(!assess_env(&base, &mk("8", "1.20 0.40 0.30")).unreliable);
        let loaded = assess_env(&base, &mk("8", "3.50 0.40 0.30"));
        assert!(loaded.unreliable);
        assert!(loaded.reasons[0].contains("loadavg"), "{:?}", loaded.reasons);
        let resized = assess_env(&base, &mk("4", "0.50 0.40 0.30"));
        assert!(resized.unreliable);
        assert!(resized.reasons[0].contains("cpus"));
        // Old fingerprint-less baselines never trip the banner.
        assert!(!assess_env(&BTreeMap::new(), &base).unreliable);
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let text = r#"{"schema_version":99,"commit":"x","workloads":[]}"#;
        let err = BenchReport::from_json(text).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn regression_beyond_threshold_fails_the_gate() {
        let base = report(vec![workload("a", 100.0, &[("svd_sweeps", 5)])]);
        let cur = report(vec![workload("a", 200.0, &[("svd_sweeps", 5)])]);
        let rows = diff(&base, &cur, DEFAULT_THRESHOLD);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].verdict, Verdict::Regressed);
        assert_eq!(rows[0].ratio, Some(2.0));
        assert!(has_regression(&rows));
        // The rendered table carries the verdict.
        assert!(render_diff(&rows).contains("REGRESSED"));
    }

    #[test]
    fn within_threshold_passes_and_improvement_is_flagged() {
        let base = report(vec![
            workload("steady", 100.0, &[]),
            workload("faster", 100.0, &[]),
        ]);
        let cur = report(vec![
            workload("steady", 110.0, &[]),
            workload("faster", 40.0, &[]),
        ]);
        let rows = diff(&base, &cur, DEFAULT_THRESHOLD);
        assert_eq!(rows[0].verdict, Verdict::Ok);
        assert_eq!(rows[1].verdict, Verdict::Improved);
        assert!(!has_regression(&rows));
    }

    #[test]
    fn new_and_removed_workloads_are_informational() {
        let base = report(vec![workload("gone", 50.0, &[])]);
        let cur = report(vec![workload("fresh", 60.0, &[])]);
        let rows = diff(&base, &cur, DEFAULT_THRESHOLD);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].verdict, Verdict::New);
        assert_eq!(rows[0].name, "fresh");
        assert_eq!(rows[1].verdict, Verdict::Removed);
        assert_eq!(rows[1].name, "gone");
        assert!(!has_regression(&rows), "membership changes alone never fail");
    }

    #[test]
    fn counter_drift_is_reported_exactly() {
        let base = report(vec![workload("a", 100.0, &[("svd_sweeps", 5), ("same", 1)])]);
        let cur = report(vec![workload(
            "a",
            101.0,
            &[("svd_sweeps", 7), ("same", 1), ("admm_iters", 3)],
        )]);
        let rows = diff(&base, &cur, DEFAULT_THRESHOLD);
        assert_eq!(
            rows[0].counter_deltas,
            [
                ("svd_sweeps".to_owned(), (5, 7)),
                ("admm_iters".to_owned(), (0, 3)),
            ]
            .into_iter()
            .collect()
        );
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_ms(&xs, 0.0), 10.0);
        assert_eq!(percentile_ms(&xs, 1.0), 40.0);
        assert_eq!(percentile_ms(&xs, 0.5), 25.0);
        assert_eq!(percentile_ms(&[7.5], 0.95), 7.5);
    }
}
