//! The calibrated workload matrix `perf_gate` measures, and the
//! measurement harness itself.
//!
//! Two synthetic instances (small ≈ 300 gates, medium = the s1423-class
//! circuit) run through every selection algorithm of the paper — exact
//! (rank-revealing QR), approximate (Algorithm 1) and hybrid
//! path/segment (Algorithm 3, ADMM) — plus the Monte-Carlo evaluation and
//! the front-end pipeline itself. Every workload uses fixed RNG seeds, so
//! the operation counters collected from `pathrep-obs` are exactly
//! reproducible: a counter diff between two `BENCH_*.json` files is an
//! algorithmic change, never machine noise.

use crate::gate::{percentile_ms, WorkloadResult};
use pathrep_core::approx::{approx_select, ApproxConfig};
use pathrep_core::exact::exact_select;
use pathrep_core::hybrid::{hybrid_select, HybridConfig, HybridInputs};
use pathrep_core::predictor::DEFAULT_KAPPA;
use pathrep_core::sketch::{
    sketch_approx_select, sketch_config_from_env, sketch_exact_select, SketchApproxConfig,
};
use pathrep_eval::metrics::{evaluate, McConfig, MeasurementPlan};
use pathrep_eval::pipeline::{
    prepare, prepare_sparse, PipelineConfig, PreparedBenchmark, PreparedSparseBenchmark,
    SparsePipelineConfig,
};
use pathrep_eval::suite::{BenchmarkSpec, Suite};
use pathrep_serve::{Client, ModelArtifact, SelectionMeta, Server, ServerConfig, WireProtocol};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Seed shared by every workload (distinct from the unit-test seeds so the
/// gate exercises fresh instances).
pub const GATE_SEED: u64 = 11;

/// Monte-Carlo sample count for the evaluation workloads — small enough to
/// keep a 5-repeat run in seconds, large enough that the timed region is
/// dominated by real work.
pub const GATE_MC_SAMPLES: usize = 2_000;

/// One named, self-contained timed unit. `Send + Sync` so a future
/// multi-process or multi-thread harness can shard the matrix; today it
/// guarantees the shared [`PreparedBenchmark`]s stay thread-safe.
pub struct Workload {
    /// Stable name — the `BENCH_*.json` diff joins on it.
    pub name: &'static str,
    run: Box<dyn Fn() + Send + Sync>,
}

impl Workload {
    /// Runs the workload once.
    pub fn run(&self) {
        (self.run)()
    }
}

fn small_spec() -> BenchmarkSpec {
    crate::bench_spec(GATE_SEED)
}

fn medium_spec() -> BenchmarkSpec {
    Suite::by_name("s1423").expect("s1423 is in the suite")
}

fn small_config() -> PipelineConfig {
    PipelineConfig {
        max_paths: 300,
        ..PipelineConfig::default()
    }
}

fn medium_config() -> PipelineConfig {
    PipelineConfig {
        t_cons_factor: 0.98,
        max_paths: 400,
        ..PipelineConfig::default()
    }
}

/// Table-2-style regime for the hybrid workloads: tight constraint, scaled
/// random variation (where segment measurement pays off).
fn hybrid_config(base: &PipelineConfig) -> PipelineConfig {
    PipelineConfig {
        t_cons_factor: 0.98,
        random_scale: 3.0,
        ..base.clone()
    }
}

fn prepare_or_die(spec: &BenchmarkSpec, config: &PipelineConfig) -> Arc<PreparedBenchmark> {
    Arc::new(prepare(spec, config).expect("gate workloads are deterministic and must prepare"))
}

fn exact_workload(name: &'static str, pb: Arc<PreparedBenchmark>) -> Workload {
    Workload {
        name,
        run: Box::new(move || {
            let dm = &pb.delay_model;
            exact_select(dm.a(), dm.mu_paths(), DEFAULT_KAPPA).expect("exact selection succeeds");
        }),
    }
}

fn approx_workload(name: &'static str, pb: Arc<PreparedBenchmark>) -> Workload {
    Workload {
        name,
        run: Box::new(move || {
            let dm = &pb.delay_model;
            let config = ApproxConfig::new(0.05, pb.t_cons);
            approx_select(dm.a(), dm.mu_paths(), &config).expect("approx selection succeeds");
        }),
    }
}

fn hybrid_workload(name: &'static str, pb: Arc<PreparedBenchmark>) -> Workload {
    Workload {
        name,
        run: Box::new(move || {
            let dm = &pb.delay_model;
            let inputs = HybridInputs {
                g: dm.g(),
                sigma: dm.sigma(),
                a: dm.a(),
                mu_segments: dm.mu_segments(),
                mu_paths: dm.mu_paths(),
            };
            let config = HybridConfig::new(0.08, 0.06, pb.t_cons);
            hybrid_select(&inputs, &config).expect("hybrid selection succeeds");
        }),
    }
}

fn mc_config() -> McConfig {
    McConfig {
        n_samples: GATE_MC_SAMPLES,
        seed: 99,
        // Use the global `PATHREP_THREADS` pool so perf_gate's thread axis
        // also covers the MC fan-out; the chunked sample split makes the
        // metrics identical at every worker count.
        threads: 0,
    }
}

fn mc_workload(name: &'static str, pb: Arc<PreparedBenchmark>) -> Workload {
    Workload {
        name,
        run: Box::new(move || {
            let dm = &pb.delay_model;
            let sel = approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.05, pb.t_cons))
                .expect("approx selection succeeds");
            let plan = MeasurementPlan::Paths {
                selected: &sel.selected,
                predictor: &sel.predictor,
            };
            evaluate(dm, &plan, &sel.remaining, &mc_config()).expect("MC evaluation succeeds");
        }),
    }
}

/// Builds a deterministic serving artifact: an MMSE predictor with
/// `measurements → targets` smooth synthetic coefficients (no RNG, so the
/// serve workloads pin their operation counters exactly).
fn serve_artifact(measurements: usize, targets: usize) -> ModelArtifact {
    let coef = pathrep_linalg::matrix::Matrix::from_fn(targets, measurements, |i, j| {
        (((i * 31 + j * 7) as f64) * 0.23).sin() * 0.4
    });
    let meas_mu: Vec<f64> = (0..measurements)
        .map(|j| 180.0 + (j as f64) * 1.5)
        .collect();
    let target_mu: Vec<f64> = (0..targets).map(|i| 170.0 + (i as f64) * 0.9).collect();
    let stds: Vec<f64> = (0..targets)
        .map(|i| 2.0 + ((i as f64) * 0.11).sin().abs())
        .collect();
    let predictor =
        pathrep_core::predictor::MeasurementPredictor::from_parts(coef, meas_mu, target_mu, stds, DEFAULT_KAPPA)
            .expect("synthetic serve predictor is valid");
    ModelArtifact {
        label: format!("gate_{measurements}x{targets}"),
        selection: SelectionMeta {
            epsilon: 0.05,
            epsilon_r: 0.03,
            eta: 0.99,
            rank: measurements,
            effective_rank: measurements,
            t_cons: 250.0,
            selected: (0..measurements).collect(),
            remaining: (0..targets).collect(),
        },
        guard_band_phi: 7.5,
        predictor,
    }
}

/// A full daemon round per run: bind an ephemeral port, load the artifact
/// over the wire, stream a fixed sequence of `predict` / `predict_batch`
/// requests from one sequential client, then drain via `shutdown`. The
/// request sequence is fixed, so the `serve.*` counters are exactly
/// reproducible at any `PATHREP_THREADS` (nondeterministic quantities —
/// batch composition, queue depth, latency — live in histograms/gauges,
/// which the gate does not compare).
fn serve_workload(
    name: &'static str,
    measurements: usize,
    targets: usize,
    requests: usize,
) -> Workload {
    serve_workload_proto(name, measurements, targets, requests, WireProtocol::Json)
}

fn serve_workload_proto(
    name: &'static str,
    measurements: usize,
    targets: usize,
    requests: usize,
    proto: WireProtocol,
) -> Workload {
    let artifact = serve_artifact(measurements, targets);
    let mut path = std::env::temp_dir();
    path.push(format!("pathrep_gate_{}_{name}.artifact", std::process::id()));
    let path = path.to_string_lossy().into_owned();
    artifact.save(&path).expect("gate artifact saves");
    let meas_mu = artifact.predictor.meas_mu().to_vec();
    Workload {
        name,
        run: Box::new(move || {
            let config = ServerConfig {
                addr: "127.0.0.1:0".into(),
                ..ServerConfig::default()
            };
            let handle = Server::bind(config)
                .expect("gate server binds an ephemeral port")
                .spawn()
                .expect("gate server spawns");
            let addr = handle.addr();
            let mut client = Client::connect(addr).expect("gate client connects");
            client.set_protocol(proto);
            let model = client.load_model(&path).expect("daemon loads artifact").model;
            let measured = |k: usize| -> Vec<f64> {
                meas_mu
                    .iter()
                    .enumerate()
                    .map(|(j, &mu)| mu + (((k * 131 + j * 17) as f64) * 0.37).sin() * 3.0)
                    .collect()
            };
            let mut rows_served = 0usize;
            let t0 = Instant::now();
            for k in 0..requests {
                if k % 8 == 0 {
                    let rows: Vec<Vec<f64>> = (0..8).map(|r| measured(k * 8 + r)).collect();
                    client.predict_batch(&model, &rows).expect("gate batch predicts");
                    rows_served += 8;
                } else {
                    client.predict(&model, &measured(k)).expect("gate predicts");
                    rows_served += 1;
                }
            }
            let elapsed = t0.elapsed().as_secs_f64();
            // Sustained rows/sec over the request loop; a gauge, because
            // wall-clock throughput is machine- and load-dependent (the
            // gate never diffs gauges).
            pathrep_obs::gauge_set("bench.rows_per_sec", rows_served as f64 / elapsed.max(1e-9));
            client.shutdown().expect("gate shutdown");
            let stats = handle.join();
            assert_eq!(stats.errors, 0, "gate serving must be error-free");
        }),
    }
}

/// Concurrency axis of the serving plane: `clients` worker threads each
/// stream `requests` batched predictions at full tilt against one daemon,
/// under a chosen runtime (`shards == 0` → the legacy thread-per-connection
/// server, `shards > 0` → the sharded reactor runtime) and wire protocol.
/// The request sequence per worker is fixed, so the deterministic `serve.*`
/// counters are exactly reproducible; throughput lands in the
/// `bench.rows_per_sec` gauge.
fn serve_concurrent_workload(
    name: &'static str,
    shards: usize,
    proto: WireProtocol,
    clients: usize,
    requests: usize,
) -> Workload {
    let artifact = serve_artifact(16, 64);
    let mut path = std::env::temp_dir();
    path.push(format!("pathrep_gate_{}_{name}.artifact", std::process::id()));
    let path = path.to_string_lossy().into_owned();
    artifact.save(&path).expect("gate artifact saves");
    let meas_mu = Arc::new(artifact.predictor.meas_mu().to_vec());
    Workload {
        name,
        run: Box::new(move || {
            let config = ServerConfig {
                addr: "127.0.0.1:0".into(),
                shards,
                ..ServerConfig::default()
            };
            let handle = Server::bind(config)
                .expect("gate server binds an ephemeral port")
                .spawn()
                .expect("gate server spawns");
            let addr = handle.addr();
            let mut loader = Client::connect(addr).expect("gate client connects");
            let model = loader.load_model(&path).expect("daemon loads artifact").model;
            let t0 = Instant::now();
            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    let model = model.clone();
                    let meas_mu = Arc::clone(&meas_mu);
                    std::thread::spawn(move || {
                        let mut client =
                            Client::connect(addr).expect("gate worker connects");
                        client.set_protocol(proto);
                        for k in 0..requests {
                            let rows: Vec<Vec<f64>> = (0..8)
                                .map(|r| {
                                    meas_mu
                                        .iter()
                                        .enumerate()
                                        .map(|(j, &mu)| {
                                            let phase = c * 7919 + (k * 8 + r) * 131 + j * 17;
                                            mu + ((phase as f64) * 0.37).sin() * 3.0
                                        })
                                        .collect()
                                })
                                .collect();
                            client
                                .predict_batch(&model, &rows)
                                .expect("gate batch predicts");
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().expect("gate worker thread");
            }
            let elapsed = t0.elapsed().as_secs_f64();
            let rows_served = clients * requests * 8;
            pathrep_obs::gauge_set("bench.rows_per_sec", rows_served as f64 / elapsed.max(1e-9));
            loader.shutdown().expect("gate shutdown");
            let stats = handle.join();
            assert_eq!(stats.errors, 0, "gate serving must be error-free");
        }),
    }
}

/// Values recorded by the `hdr_record` workload — enough that the timed
/// region is dominated by [`pathrep_obs::HdrHistogram::record`] itself.
const HDR_RECORD_VALUES: usize = 200_000;

/// Measures the HDR-histogram recording hot path: the per-request cost the
/// serving plane pays for `serve.request_ns`. A deterministic LCG drives
/// the values (seeded, so the `hdr_records` counter is exactly stable) and
/// the resulting quantiles feed `black_box` so the loop cannot fold away.
fn hdr_record_workload(name: &'static str) -> Workload {
    Workload {
        name,
        run: Box::new(move || {
            let mut h = pathrep_obs::HdrHistogram::new();
            let mut state = GATE_SEED;
            for _ in 0..HDR_RECORD_VALUES {
                // LCG (Numerical Recipes constants): spans ~6 decades once
                // folded into a latency-like range below.
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let ns = 1_000.0 + (state >> 11) as f64 % 1.0e9;
                h.record(ns);
            }
            std::hint::black_box(h.quantile(0.999));
            assert_eq!(h.count(), HDR_RECORD_VALUES as u64);
            pathrep_obs::counter_add("obs.hdr.records", HDR_RECORD_VALUES as u64);
        }),
    }
}

/// Builds the full workload matrix. Preparation (circuit generation, path
/// extraction, delay-model construction for the shared instances) happens
/// here, untimed; the returned workloads are pure timed regions.
pub fn workload_matrix() -> Vec<Workload> {
    let small = prepare_or_die(&small_spec(), &small_config());
    let medium = prepare_or_die(&medium_spec(), &medium_config());
    let small_hy = prepare_or_die(&small_spec(), &hybrid_config(&small_config()));
    let medium_hy = prepare_or_die(&medium_spec(), &hybrid_config(&medium_config()));

    let mut workloads = vec![
        Workload {
            name: "pipeline_small",
            run: Box::new(|| {
                prepare(&small_spec(), &small_config()).expect("pipeline prepares");
            }),
        },
        Workload {
            name: "pipeline_medium",
            run: Box::new(|| {
                prepare(&medium_spec(), &medium_config()).expect("pipeline prepares");
            }),
        },
        exact_workload("exact_small", Arc::clone(&small)),
        exact_workload("exact_medium", Arc::clone(&medium)),
        approx_workload("approx_small", Arc::clone(&small)),
        approx_workload("approx_medium", Arc::clone(&medium)),
        hybrid_workload("hybrid_small", Arc::clone(&small_hy)),
        hybrid_workload("hybrid_medium", Arc::clone(&medium_hy)),
    ];
    workloads.push(mc_workload("mc_eval_small", small));
    workloads.push(mc_workload("mc_eval_medium", medium));
    workloads.push(serve_workload("serve_small", 16, 64, 64));
    workloads.push(serve_workload("serve_medium", 48, 256, 256));
    workloads.push(serve_workload_proto(
        "serve_binary_small",
        16,
        64,
        64,
        WireProtocol::Binary,
    ));
    // The concurrency axis: identical aggregate load through the legacy
    // thread-per-connection runtime (JSON) and the sharded reactor runtime
    // (binary) — the sustained rows/sec comparison between these two rows
    // is the headline number for the sharded serving plane.
    workloads.push(serve_concurrent_workload(
        "serve_threads",
        0,
        WireProtocol::Json,
        4,
        24,
    ));
    workloads.push(serve_concurrent_workload(
        "serve_sharded",
        4,
        WireProtocol::Binary,
        4,
        24,
    ));
    workloads.push(hdr_record_workload("hdr_record"));
    workloads
}

fn large_spec() -> BenchmarkSpec {
    Suite::large()
}

fn large_config() -> SparsePipelineConfig {
    SparsePipelineConfig {
        t_cons_factor: 1.0,
        k_paths: 800,
    }
}

fn sketch_exact_workload(name: &'static str, pb: Arc<PreparedSparseBenchmark>) -> Workload {
    Workload {
        name,
        run: Box::new(move || {
            let dm = &pb.delay_model;
            let sketch = sketch_config_from_env();
            sketch_exact_select(dm.a(), dm.mu_paths(), DEFAULT_KAPPA, &sketch)
                .expect("sketched exact selection succeeds");
        }),
    }
}

fn sketch_approx_workload(name: &'static str, pb: Arc<PreparedSparseBenchmark>) -> Workload {
    Workload {
        name,
        run: Box::new(move || {
            let dm = &pb.delay_model;
            let config = SketchApproxConfig::new(0.05, pb.t_cons);
            sketch_approx_select(dm.a(), dm.mu_paths(), &config)
                .expect("sketched approx selection succeeds");
        }),
    }
}

/// The large-instance matrix: the 100k-gate-class spec through the sparse
/// front-end and the sketched Algorithm 1. Separate from
/// [`workload_matrix`] so default `perf_gate` runs (and their
/// `BENCH_*.json` baselines) are unchanged; `perf_gate --include-large`
/// appends these rows. The shared instance is prepared here, untimed;
/// `pipeline_large` re-runs the full sparse front-end per repeat.
pub fn large_workload_matrix() -> Vec<Workload> {
    let large = Arc::new(
        prepare_sparse(&large_spec(), &large_config())
            .expect("large instance is deterministic and must prepare"),
    );
    vec![
        Workload {
            name: "pipeline_large",
            run: Box::new(|| {
                prepare_sparse(&large_spec(), &large_config()).expect("sparse pipeline prepares");
            }),
        },
        sketch_exact_workload("exact_large", Arc::clone(&large)),
        sketch_approx_workload("approx_large", large),
    ]
}

/// Dotted obs counter → short `BENCH_*.json` key for the headline
/// operation counts; everything else keeps its dotted name.
const COUNTER_ALIASES: &[(&str, &str)] = &[
    ("convopt.admm.iterations", "admm_iters"),
    ("core.approx.evaluations", "approx_evals"),
    ("core.subset.calls", "subset_calls"),
    ("eval.mc.samples", "mc_samples"),
    ("linalg.qr.pivot_swaps", "qr_pivots"),
    ("linalg.svd.calls", "svd_calls"),
    ("linalg.svd.qr_sweeps", "svd_sweeps"),
    ("obs.hdr.records", "hdr_records"),
    ("serve.predictions", "serve_predictions"),
    ("serve.requests", "serve_requests"),
    ("ssta.extract.paths", "extract_paths"),
];

fn collect_counters(snap: &pathrep_obs::Snapshot) -> BTreeMap<String, u64> {
    snap.counters
        .iter()
        .map(|c| {
            let key = COUNTER_ALIASES
                .iter()
                .find(|(dotted, _)| *dotted == c.name)
                .map(|&(_, short)| short.to_owned())
                .unwrap_or_else(|| c.name.clone());
            (key, c.value)
        })
        .collect()
}

/// Runs every workload `repeats` times with telemetry on, collecting wall
/// times (p50/p95) and the obs counters of the final repeat. Counters are
/// checked for repeat-to-repeat stability — drift means hidden global
/// state and is reported on stderr rather than silently recorded.
pub fn measure(workloads: &[Workload], repeats: usize) -> Vec<WorkloadResult> {
    let repeats = repeats.max(1);
    pathrep_obs::set_enabled(true);
    let mut results = Vec::with_capacity(workloads.len());
    for w in workloads {
        let mut times_ms = Vec::with_capacity(repeats);
        let mut counters: Option<BTreeMap<String, u64>> = None;
        let mut profile = Vec::new();
        let mut rates: Vec<f64> = Vec::new();
        for rep in 0..repeats {
            pathrep_obs::reset();
            let t0 = Instant::now();
            w.run();
            times_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            let snap = pathrep_obs::registry().snapshot();
            // Self-time profile of the final repeat (same snapshot the
            // counters come from).
            profile = pathrep_obs::selftime::profile(&snap);
            // Sustained throughput, for workloads that report it.
            if let Some(g) = snap.gauges.iter().find(|g| g.name == "bench.rows_per_sec") {
                rates.push(g.value);
            }
            let c = collect_counters(&snap);
            if let Some(prev) = &counters {
                if prev != &c {
                    eprintln!(
                        "perf_gate: WARNING: workload `{}` counters drifted between \
                         repeat {} and {} — seeds are not pinning the work",
                        w.name,
                        rep - 1,
                        rep
                    );
                }
            }
            counters = Some(c);
        }
        times_ms.sort_by(f64::total_cmp);
        rates.sort_by(f64::total_cmp);
        results.push(WorkloadResult {
            name: w.name.to_owned(),
            p50_ms: percentile_ms(&times_ms, 0.50),
            p95_ms: percentile_ms(&times_ms, 0.95),
            p999_ms: Some(percentile_ms(&times_ms, 0.999)),
            rows_per_sec: if rates.is_empty() {
                None
            } else {
                Some(percentile_ms(&rates, 0.50))
            },
            counters: counters.unwrap_or_default(),
            profile,
        });
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Manual probe for the large-instance scaling claim: wall time of the
    /// dense exact pipeline (full SVD of the densified `A`) against the
    /// sketched pipeline on the same instance. Ignored by default — run
    /// with `cargo test -p pathrep-bench --release -- --ignored
    /// dense_baseline` to reproduce the numbers quoted in DESIGN.md.
    #[test]
    #[ignore = "manual probe: dense-vs-sketch wall time on the large instance"]
    fn dense_baseline_on_large_instance() {
        use std::time::Instant;
        let pb = prepare_sparse(&large_spec(), &large_config()).unwrap();
        let dm = &pb.delay_model;
        let t0 = Instant::now();
        let sk = sketch_exact_select(dm.a(), dm.mu_paths(), DEFAULT_KAPPA, &sketch_config_from_env())
            .unwrap();
        let sketch_s = t0.elapsed().as_secs_f64();
        let dense_a = dm.a().to_dense();
        let t1 = Instant::now();
        let dn = exact_select(&dense_a, dm.mu_paths(), DEFAULT_KAPPA).unwrap();
        let dense_s = t1.elapsed().as_secs_f64();
        eprintln!(
            "large instance ({} paths × {} vars, nnz {}): sketch {:.2}s (r={}) \
             vs dense {:.2}s (r={}) — {:.1}× speedup",
            dm.a().nrows(),
            dm.a().ncols(),
            dm.a().nnz(),
            sketch_s,
            sk.rank,
            dense_s,
            dn.rank,
            dense_s / sketch_s
        );
        assert!(
            dense_s >= 10.0 * sketch_s,
            "dense ({dense_s:.2}s) is not ≥10× slower than sketched ({sketch_s:.2}s)"
        );
    }

    #[test]
    fn measure_records_times_and_deterministic_counters() {
        let workloads = vec![Workload {
            name: "noop_counter",
            run: Box::new(|| {
                pathrep_obs::counter_add("linalg.svd.qr_sweeps", 3);
                pathrep_obs::counter_add("custom.thing", 1);
            }),
        }];
        let results = measure(&workloads, 3);
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.name, "noop_counter");
        assert!(r.p50_ms >= 0.0 && r.p95_ms >= r.p50_ms);
        // The alias maps the dotted obs name to the short key; unknown
        // counters keep their dotted name.
        assert_eq!(r.counters.get("svd_sweeps"), Some(&3));
        assert_eq!(r.counters.get("custom.thing"), Some(&1));
    }
}
