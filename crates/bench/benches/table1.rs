//! Bench: regenerates Table 1 (exact vs approximate path selection) at a
//! reduced size and times the selection stage.

use criterion::{criterion_group, criterion_main, Criterion};
use pathrep_bench::prepared_small;
use pathrep_core::approx::{approx_select_with, ApproxConfig};
use pathrep_core::ModelFactors;
use pathrep_eval::experiments::table1::{render, run, Table1Options};

fn bench_table1(c: &mut Criterion) {
    // Regenerate the (reduced) table once, so `cargo bench` output carries
    // the reproduced rows.
    let rows = run(&Table1Options::fast()).expect("table 1 fast run");
    println!("\nTable 1 (reduced configuration):\n{}", render(&rows));

    let pb = prepared_small(1);
    let dm = &pb.delay_model;
    let factors = ModelFactors::compute(dm.a()).expect("factors");
    c.bench_function("table1/approx_select", |b| {
        b.iter(|| {
            approx_select_with(
                dm.a(),
                dm.mu_paths(),
                &ApproxConfig::new(0.05, pb.t_cons),
                &factors,
            )
            .expect("selection")
        })
    });
    c.bench_function("table1/model_factors", |b| {
        b.iter(|| ModelFactors::compute(dm.a()).expect("factors"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_table1
}
criterion_main!(benches);
