//! Ablation: SVD of `A` vs symmetric eigendecomposition of the Gram matrix
//! `A·Aᵀ` for rank / spectrum computation — the two routes DESIGN.md calls
//! out. (The Gram route squares the condition number but works on the
//! smaller square matrix when |x| >> n.)

use criterion::{criterion_group, criterion_main, Criterion};
use pathrep_bench::prepared_small;
use pathrep_linalg::eig::SymmetricEig;
use pathrep_linalg::svd::Svd;

fn bench_svd_routes(c: &mut Criterion) {
    let pb = prepared_small(8);
    let a = pb.delay_model.a().clone();
    let gram = a.matmul(&a.transpose()).expect("gram");
    println!(
        "\nAblation svd: A is {}x{}, Gram is {}x{}",
        a.nrows(),
        a.ncols(),
        gram.nrows(),
        gram.ncols()
    );
    c.bench_function("ablation/svd_of_a", |b| {
        b.iter(|| Svd::compute(&a).expect("svd").rank(1e-9))
    });
    c.bench_function("ablation/eig_of_gram", |b| {
        b.iter(|| {
            let eig = SymmetricEig::compute(&gram).expect("eig");
            // Rank with the same relative tolerance, on squared values.
            let vmax = eig.values().first().copied().unwrap_or(0.0).max(0.0);
            eig.values()
                .iter()
                .take_while(|&&v| v > 1e-18 * vmax)
                .count()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_svd_routes
}
criterion_main!(benches);
