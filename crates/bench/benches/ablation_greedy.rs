//! Ablation: greedy conditioning-based selection vs the paper's
//! SVD + QR-with-column-pivoting subset selection (Algorithm 1/2).

use criterion::{criterion_group, criterion_main, Criterion};
use pathrep_bench::prepared_small;
use pathrep_core::approx::{approx_select, ApproxConfig};
use pathrep_core::greedy::greedy_select;

fn bench_greedy(c: &mut Criterion) {
    let pb = prepared_small(13);
    let dm = &pb.delay_model;
    let eps = 0.05;
    let algo1 = approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(eps, pb.t_cons))
        .expect("algo1");
    let greedy = greedy_select(dm.a(), dm.mu_paths(), eps, pb.t_cons, 3.0).expect("greedy");
    println!(
        "\nAblation greedy: Algorithm 1 picks {} paths (eps_r {:.3}) vs greedy {} \
         (eps_r {:.3})",
        algo1.selected.len(),
        algo1.epsilon_r,
        greedy.selected.len(),
        greedy.epsilon_r
    );
    c.bench_function("ablation/select_algo1", |b| {
        b.iter(|| {
            approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(eps, pb.t_cons))
                .expect("sel")
        })
    });
    c.bench_function("ablation/select_greedy", |b| {
        b.iter(|| greedy_select(dm.a(), dm.mu_paths(), eps, pb.t_cons, 3.0).expect("sel"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_greedy
}
criterion_main!(benches);
