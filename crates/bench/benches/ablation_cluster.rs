//! Ablation: Section 4.4's clustering speedup — global Algorithm 1 vs
//! per-cluster Algorithm 1 with a joint predictor.

use criterion::{criterion_group, criterion_main, Criterion};
use pathrep_bench::prepared_small;
use pathrep_core::approx::{approx_select, ApproxConfig};
use pathrep_core::cluster::{clustered_select, ClusterConfig};

fn bench_cluster(c: &mut Criterion) {
    let pb = prepared_small(12);
    let dm = &pb.delay_model;
    let approx_cfg = ApproxConfig::new(0.05, pb.t_cons);

    let global = approx_select(dm.a(), dm.mu_paths(), &approx_cfg).expect("global");
    let cluster_cfg = ClusterConfig::new(approx_cfg.clone(), (pb.path_count() / 4).max(8));
    let clustered =
        clustered_select(dm.a(), dm.mu_paths(), dm.g(), &cluster_cfg).expect("clustered");
    println!(
        "\nAblation cluster: global |Pr| = {} (eps_r {:.3}) vs clustered |Pr| = {} \
         across {} clusters (eps_r {:.3})",
        global.selected.len(),
        global.epsilon_r,
        clustered.selected.len(),
        clustered.cluster_count(),
        clustered.epsilon_r
    );

    c.bench_function("ablation/select_global", |b| {
        b.iter(|| approx_select(dm.a(), dm.mu_paths(), &approx_cfg).expect("sel"))
    });
    c.bench_function("ablation/select_clustered", |b| {
        b.iter(|| {
            clustered_select(dm.a(), dm.mu_paths(), dm.g(), &cluster_cfg).expect("sel")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_cluster
}
criterion_main!(benches);
