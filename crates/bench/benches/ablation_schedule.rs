//! Ablation: Algorithm 1's search schedule — the paper's decrement-by-one
//! loop vs bisection. Both find the same selection size; bisection needs
//! O(log rank) error evaluations instead of O(rank).

use criterion::{criterion_group, criterion_main, Criterion};
use pathrep_bench::prepared_small;
use pathrep_core::approx::{approx_select_with, ApproxConfig, Schedule};
use pathrep_core::ModelFactors;

fn bench_schedule(c: &mut Criterion) {
    let pb = prepared_small(7);
    let dm = &pb.delay_model;
    let factors = ModelFactors::compute(dm.a()).expect("factors");
    let base = ApproxConfig::new(0.05, pb.t_cons);

    // Report the evaluation counts once.
    let bi = approx_select_with(dm.a(), dm.mu_paths(), &base, &factors).expect("bisection");
    let de = approx_select_with(
        dm.a(),
        dm.mu_paths(),
        &base.clone().with_schedule(Schedule::DecrementByOne),
        &factors,
    )
    .expect("decrement");
    println!(
        "\nAblation schedule: |Pr| bisection = {} ({} evals) vs decrement = {} ({} evals)",
        bi.selected.len(),
        bi.trace.len(),
        de.selected.len(),
        de.trace.len()
    );

    c.bench_function("ablation/schedule_bisection", |b| {
        b.iter(|| approx_select_with(dm.a(), dm.mu_paths(), &base, &factors).expect("sel"))
    });
    let dec_cfg = base.with_schedule(Schedule::DecrementByOne);
    c.bench_function("ablation/schedule_decrement", |b| {
        b.iter(|| approx_select_with(dm.a(), dm.mu_paths(), &dec_cfg, &factors).expect("sel"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_schedule
}
criterion_main!(benches);
