//! Ablation: linearized ADMM vs exact ellipsoid-projection ADMM on the
//! segment-selection program (Eqn 10).

use criterion::{criterion_group, criterion_main, Criterion};
use pathrep_bench::prepared_small_table2;
use pathrep_convopt::{solve_ellipsoid_admm, solve_linearized_admm, AdmmConfig, GroupSelectProblem};
use pathrep_core::exact::exact_select;
use pathrep_core::predictor::DEFAULT_KAPPA;

fn bench_solvers(c: &mut Criterion) {
    let pb = prepared_small_table2(9);
    let dm = &pb.delay_model;
    let exact = exact_select(dm.a(), dm.mu_paths(), DEFAULT_KAPPA).expect("exact");
    let problem = GroupSelectProblem {
        g_target: dm.g().select_rows(&exact.selected),
        sigma: dm.sigma().clone(),
        radius: 0.06 * pb.t_cons / DEFAULT_KAPPA,
    };
    let config = AdmmConfig::default();
    let lin = solve_linearized_admm(&problem, &config).expect("linearized");
    let ell = solve_ellipsoid_admm(&problem, &config).expect("ellipsoid");
    println!(
        "\nAblation solver: linearized picks {} segments (obj {:.3}), \
         ellipsoid picks {} (obj {:.3})",
        lin.selected.len(),
        lin.objective,
        ell.selected.len(),
        ell.objective
    );
    c.bench_function("ablation/admm_linearized", |b| {
        b.iter(|| solve_linearized_admm(&problem, &config).expect("solve"))
    });
    c.bench_function("ablation/admm_ellipsoid", |b| {
        b.iter(|| solve_ellipsoid_admm(&problem, &config).expect("solve"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_solvers
}
criterion_main!(benches);
