//! Bench: regenerates Table 2 (hybrid path/segment selection) at a reduced
//! size and times the hybrid stage.

use criterion::{criterion_group, criterion_main, Criterion};
use pathrep_bench::prepared_small_table2;
use pathrep_core::hybrid::{hybrid_select_with, HybridConfig, HybridInputs};
use pathrep_core::ModelFactors;
use pathrep_eval::experiments::table2::{render, run, Table2Options};

fn bench_table2(c: &mut Criterion) {
    let rows = run(&Table2Options::fast()).expect("table 2 fast run");
    println!("\nTable 2 (reduced configuration):\n{}", render(&rows));

    let pb = prepared_small_table2(2);
    let dm = &pb.delay_model;
    let factors = ModelFactors::compute(dm.a()).expect("factors");
    let inputs = HybridInputs {
        g: dm.g(),
        sigma: dm.sigma(),
        a: dm.a(),
        mu_segments: dm.mu_segments(),
        mu_paths: dm.mu_paths(),
    };
    c.bench_function("table2/hybrid_select", |b| {
        b.iter(|| {
            hybrid_select_with(
                &inputs,
                &HybridConfig::new(0.08, 0.06, pb.t_cons),
                &factors,
            )
            .expect("hybrid selection")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_table2
}
criterion_main!(benches);
