//! Bench: regenerates the Section-6.3 guard-band analysis at a reduced size
//! and times the per-chip classification.

use criterion::{criterion_group, criterion_main, Criterion};
use pathrep_bench::{bench_spec, prepared_small};
use pathrep_core::approx::{approx_select, ApproxConfig};
use pathrep_core::guardband::GuardBandOutcome;
use pathrep_eval::experiments::guardband::{render, run, GuardBandOptions};
use pathrep_eval::metrics::McConfig;
use pathrep_eval::pipeline::PipelineConfig;
use pathrep_variation::sampler::VariationSampler;

fn bench_guardband(c: &mut Criterion) {
    let opts = GuardBandOptions {
        specs: vec![bench_spec(4)],
        epsilon: 0.05,
        pipeline: PipelineConfig {
            max_paths: 300,
            ..PipelineConfig::default()
        },
        mc: McConfig {
            n_samples: 500,
            ..McConfig::default()
        },
    };
    let rows = run(&opts).expect("guardband run");
    println!("\nGuard-band analysis (reduced configuration):\n{}", render(&rows));

    let pb = prepared_small(4);
    let dm = &pb.delay_model;
    let approx = approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.05, pb.t_cons))
        .expect("selection");
    let bands: Vec<f64> = approx
        .predictor
        .wc_errors()
        .iter()
        .map(|wc| (wc / pb.t_cons).min(0.999))
        .collect();
    c.bench_function("guardband/classify_one_chip", |b| {
        let mut sampler = VariationSampler::new(dm.variable_count(), 11);
        b.iter(|| {
            let x = sampler.draw();
            let d = dm.path_delays(&x).expect("delays");
            let measured: Vec<f64> = approx.selected.iter().map(|&i| d[i]).collect();
            let pred = approx.predictor.predict(&measured).expect("predict");
            let mut outcome = GuardBandOutcome::default();
            for (k, &p) in approx.remaining.iter().enumerate() {
                outcome.record(pred[k], d[p], bands[k], pb.t_cons);
            }
            outcome
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_guardband
}
criterion_main!(benches);
