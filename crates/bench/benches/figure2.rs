//! Bench: regenerates Figure 2 (normalized singular values, base vs 3x
//! random) at a reduced size and times the spectrum computation.

use criterion::{criterion_group, criterion_main, Criterion};
use pathrep_bench::{bench_spec, prepared_small};
use pathrep_eval::experiments::figure2::{render, run, Figure2Options};
use pathrep_eval::pipeline::PipelineConfig;
use pathrep_linalg::svd::Svd;

fn bench_figure2(c: &mut Criterion) {
    let opts = Figure2Options {
        spec: bench_spec(3),
        k: 30,
        random_scale: 3.0,
        pipeline: PipelineConfig {
            max_paths: 300,
            ..PipelineConfig::default()
        },
    };
    let fig = run(&opts).expect("figure 2 run");
    println!("\nFigure 2 (reduced configuration):\n{}", render(&fig));

    let pb = prepared_small(3);
    let a = pb.delay_model.a().clone();
    c.bench_function("figure2/svd_spectrum", |b| {
        b.iter(|| {
            let svd = Svd::compute(&a).expect("svd");
            (svd.effective_rank(0.05).expect("eta"), svd.rank(1e-9))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_figure2
}
criterion_main!(benches);
