//! Bench: the dense kernels everything is built on, at the sizes the
//! selection pipeline actually hits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathrep_linalg::cholesky::Cholesky;
use pathrep_linalg::eig::SymmetricEig;
use pathrep_linalg::qr::Qr;
use pathrep_linalg::svd::Svd;
use pathrep_linalg::Matrix;
use rand::{Rng, SeedableRng};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

fn bench_kernels(c: &mut Criterion) {
    for &n in &[32usize, 64, 128] {
        let a = random_matrix(n, n, n as u64);
        c.bench_with_input(BenchmarkId::new("linalg/matmul", n), &n, |b, _| {
            b.iter(|| a.matmul(&a).expect("matmul"))
        });
        c.bench_with_input(BenchmarkId::new("linalg/svd", n), &n, |b, _| {
            b.iter(|| Svd::compute(&a).expect("svd"))
        });
        c.bench_with_input(BenchmarkId::new("linalg/qr_pivoted", n), &n, |b, _| {
            b.iter(|| Qr::compute_pivoted(&a).expect("qr"))
        });
        let spd = {
            let mut g = a.matmul(&a.transpose()).expect("gram");
            for i in 0..n {
                g[(i, i)] += n as f64;
            }
            g
        };
        c.bench_with_input(BenchmarkId::new("linalg/cholesky", n), &n, |b, _| {
            b.iter(|| Cholesky::compute(&spd).expect("cholesky"))
        });
        c.bench_with_input(BenchmarkId::new("linalg/eig_sym", n), &n, |b, _| {
            b.iter(|| SymmetricEig::compute(&spd).expect("eig"))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_kernels
}
criterion_main!(benches);
