//! Evaluation harness: regenerates every table and figure of the paper.
//!
//! * [`suite`] — the ten ISCAS'89-class benchmark configurations with the
//!   region counts of the paper's tables;
//! * [`pipeline`] — circuit generation → statistically-critical path
//!   extraction → linear delay model, the shared front-end of every
//!   experiment;
//! * [`metrics`] — seeded, multi-threaded Monte-Carlo evaluation producing
//!   the paper's `e1` / `e2` error statistics (Section 6);
//! * [`experiments`] — one module per table/figure: `table1`, `table2`,
//!   `figure2`, `guardband`;
//! * [`report`] — plain-text table formatting.
//!
//! Each experiment also ships as a binary: `cargo run --release -p
//! pathrep-eval --bin table1` (and `table2`, `figure2`, `guardband`).

pub mod csv;
pub mod experiments;
pub mod metrics;
pub mod pipeline;
pub mod report;
pub mod suite;

pub use pipeline::{prepare, PipelineConfig, PreparedBenchmark};
pub use suite::{BenchmarkSpec, Suite};
