//! Plain-text table formatting for experiment reports.

/// A simple fixed-width table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells beyond the header count are kept; short rows
    /// are padded).
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (j, cell) in row.iter().enumerate() {
                widths[j] = widths[j].max(cell.len());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let fmt_row = |row: &[String]| -> String {
            let mut s = String::new();
            for (j, width) in widths.iter().enumerate() {
                let cell = row.get(j).map(String::as_str).unwrap_or("");
                s.push_str(&format!("{cell:>width$}"));
                if j + 1 < ncols {
                    s.push_str("  ");
                }
            }
            s
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Formats a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.push_row(["a", "1"]);
        t.push_row(["long-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[3].contains("long-name"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.push_row(["x"]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0529), "5.29");
        assert_eq!(pct(0.0), "0.00");
    }
}
