//! Monte-Carlo evaluation of a selection (Section 6 of the paper).
//!
//! Draws `N` seeded realizations of the variation vector, "measures" the
//! representative components on each (their exact delays under the linear
//! model — the paper's own protocol), predicts the remaining target paths,
//! and reports the paper's error statistics:
//!
//! * `ε_i`  — max over samples of the relative error of path `i`,
//! * `ε̂_i` — mean over samples of the relative error of path `i`,
//! * `e1`  — average of `ε_i` over the predicted paths,
//! * `e2`  — average of `ε̂_i` over the predicted paths.

use pathrep_core::hybrid::HybridSelection;
use pathrep_core::MeasurementPredictor;
use pathrep_variation::sampler::VariationSampler;
use pathrep_variation::sensitivity::DelayModel;
use std::error::Error;
use std::fmt;

/// Samples per Monte-Carlo chunk. Chunk `c` draws up to this many samples
/// from an RNG seeded `seed + c`, so the sample stream is a pure function
/// of the configuration — never of the worker count or scheduling.
pub const MC_CHUNK: usize = 256;

/// Monte-Carlo configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct McConfig {
    /// Number of samples (the paper uses 10 000).
    pub n_samples: usize,
    /// Base RNG seed; sample chunk `c` uses `seed + c` (see [`MC_CHUNK`]).
    pub seed: u64,
    /// Worker-count override for this evaluation; `0` uses the global
    /// `pathrep-par` pool size (the `PATHREP_THREADS` contract). Results
    /// are bit-identical at every setting — only wall time changes.
    pub threads: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            n_samples: 10_000,
            seed: 99,
            threads: 0,
        }
    }
}

/// What is measured post-silicon.
#[derive(Debug, Clone, Copy)]
pub enum MeasurementPlan<'a> {
    /// Measure a subset of target paths (exact / approximate selection).
    Paths {
        /// Indices of the measured paths.
        selected: &'a [usize],
        /// Predictor from measured to remaining paths.
        predictor: &'a MeasurementPredictor,
    },
    /// Measure segments plus a subset of paths (hybrid selection).
    Hybrid {
        /// The hybrid selection result.
        selection: &'a HybridSelection,
    },
}

/// The paper's error statistics over the predicted (remaining) paths.
#[derive(Debug, Clone, PartialEq)]
pub struct McMetrics {
    /// `ε_i` per predicted path.
    pub per_path_max: Vec<f64>,
    /// `ε̂_i` per predicted path.
    pub per_path_avg: Vec<f64>,
    /// Average of `ε_i` (%: multiply by 100 when reporting).
    pub e1: f64,
    /// Average of `ε̂_i`.
    pub e2: f64,
}

/// Error from Monte-Carlo evaluation.
#[derive(Debug)]
pub struct McError {
    message: String,
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "monte-carlo evaluation failed: {}", self.message)
    }
}

impl Error for McError {}

fn err<E: fmt::Display>(e: E) -> McError {
    McError {
        message: e.to_string(),
    }
}

/// One chunk's accumulators: per-path max error, per-path error sum, and
/// the number of samples actually drawn.
type McShard = (Vec<f64>, Vec<f64>, usize);

/// Draws and scores chunk `c` (samples `c·MC_CHUNK .. min((c+1)·MC_CHUNK,
/// n_samples)`) with its own RNG seeded `seed + c`. Depends only on the
/// chunk index and the configuration, never on which worker runs it.
fn evaluate_chunk(
    dm: &DelayModel,
    plan: &MeasurementPlan<'_>,
    remaining: &[usize],
    config: &McConfig,
    c: usize,
) -> Result<McShard, String> {
    let n_here = MC_CHUNK.min(config.n_samples - c * MC_CHUNK);
    let nr = remaining.len();
    let mut sampler = VariationSampler::new(dm.variable_count(), config.seed + c as u64);
    let mut max_err = vec![0.0_f64; nr];
    let mut sum_err = vec![0.0_f64; nr];
    for _ in 0..n_here {
        let x = sampler.draw();
        let d_all = dm.path_delays(&x).map_err(|e| e.to_string())?;
        let prediction = match plan {
            MeasurementPlan::Paths {
                selected,
                predictor,
            } => {
                let measured: Vec<f64> = selected.iter().map(|&i| d_all[i]).collect();
                predictor.predict(&measured)
            }
            MeasurementPlan::Hybrid { selection } => {
                let d_seg = dm.segment_delays(&x).map_err(|e| e.to_string())?;
                let mut measured = Vec::with_capacity(selection.measurement_count());
                measured.extend(selection.segments.iter().map(|&s| d_seg[s]));
                measured.extend(selection.paths.iter().map(|&p| d_all[p]));
                selection.predictor.predict(&measured)
            }
        };
        let prediction = prediction.map_err(|e| e.to_string())?;
        for (k, &path) in remaining.iter().enumerate() {
            let truth = d_all[path];
            let rel = (prediction[k] - truth).abs() / truth.abs().max(1e-12);
            if rel > max_err[k] {
                max_err[k] = rel;
            }
            sum_err[k] += rel;
        }
    }
    Ok((max_err, sum_err, n_here))
}

/// Runs the Monte-Carlo evaluation of `plan` over `remaining` target paths.
///
/// `remaining` must list the indices (into the delay model's target set)
/// the plan's predictor produces, in the predictor's output order.
///
/// The sample stream is split into fixed [`MC_CHUNK`]-sized chunks, each
/// with its own RNG seeded `seed + chunk`, fanned out over the
/// `pathrep-par` pool and combined in chunk order — so the metrics are
/// bit-identical for any `threads` setting (including sequential).
///
/// # Errors
///
/// Returns [`McError`] when shapes disagree or a worker fails.
pub fn evaluate(
    dm: &DelayModel,
    plan: &MeasurementPlan<'_>,
    remaining: &[usize],
    config: &McConfig,
) -> Result<McMetrics, McError> {
    let _span = pathrep_obs::span!("mc_evaluate");
    if config.n_samples == 0 {
        return Err(err("n_samples must be positive"));
    }
    pathrep_obs::counter_add("eval.mc.evaluations", 1);
    pathrep_obs::counter_add("eval.mc.samples", config.n_samples as u64);
    if remaining.is_empty() {
        return Ok(McMetrics {
            per_path_max: Vec::new(),
            per_path_avg: Vec::new(),
            e1: 0.0,
            e2: 0.0,
        });
    }
    let nr = remaining.len();
    // The per-sample matvecs inside `path_delays`/`predict` record their
    // own model work under "matvec" on whichever worker runs them; this
    // closed-form record covers the evaluation loop proper — the draw of
    // the variation vector and the per-path error update (sub, abs, div,
    // max/accumulate ≈ 4 flops each) — and is a pure function of the
    // configuration, so it is bit-identical at any thread count.
    let (wk_flops, wk_bytes) = {
        let (ns, nrp, nv) = (
            config.n_samples as u64,
            nr as u64,
            dm.variable_count() as u64,
        );
        let flops = ns * (4 * nrp + nv);
        let bytes = 8 * ns * (3 * nrp + nv);
        pathrep_obs::work::record("mc_evaluate", flops, bytes, ns * (3 * nrp + nv));
        (flops, bytes)
    };
    let chunks = config.n_samples.div_ceil(MC_CHUNK);
    let shards = pathrep_par::map_indexed_with(chunks, 1, config.threads, |c| {
        evaluate_chunk(dm, plan, remaining, config, c)
    });

    // Combine in chunk-index order: the reduction never sees scheduling
    // order, so the totals are bit-identical at any thread count. The first
    // failing chunk (by index) also wins deterministically.
    let mut per_path_max = vec![0.0_f64; nr];
    let mut per_path_sum = vec![0.0_f64; nr];
    let mut total = 0usize;
    for shard in shards {
        let (mx, sm, n) = shard.map_err(err)?;
        for k in 0..nr {
            per_path_max[k] = per_path_max[k].max(mx[k]);
            per_path_sum[k] += sm[k];
        }
        total += n;
    }
    if total != config.n_samples {
        return Err(err(format!(
            "worker accounting mismatch: {total} of {} samples",
            config.n_samples
        )));
    }
    let per_path_avg: Vec<f64> = per_path_sum.iter().map(|s| s / total as f64).collect();
    let e1 = per_path_max.iter().sum::<f64>() / nr as f64;
    let e2 = per_path_avg.iter().sum::<f64>() / nr as f64;
    if pathrep_obs::ledger::collecting() {
        let mut sorted = per_path_max.clone();
        // NaN-total ascending order (NaNs first): a poisoned error value
        // can no longer scramble the quantile positions.
        sorted.sort_by(|a, b| pathrep_linalg::vecops::cmp_nan_smallest(*a, *b));
        let q = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
        pathrep_obs::ledger::record("eval", "mc_evaluate", |f| {
            f.int("samples", config.n_samples as u64)
                .int("predicted_paths", nr as u64)
                .num("e1", e1)
                .num("e2", e2)
                .num("max_err_p50", q(0.50))
                .num("max_err_p90", q(0.90))
                .num("max_err_worst", sorted[sorted.len() - 1])
                .int("work_flops", wk_flops)
                .int("work_bytes", wk_bytes)
                .num("work_intensity", wk_flops as f64 / wk_bytes.max(1) as f64);
        });
    }
    Ok(McMetrics {
        per_path_max,
        per_path_avg,
        e1,
        e2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{prepare, PipelineConfig};
    use crate::suite::BenchmarkSpec;
    use pathrep_core::exact::exact_select;
    use pathrep_core::predictor::DEFAULT_KAPPA;

    fn tiny() -> crate::pipeline::PreparedBenchmark {
        prepare(
            &BenchmarkSpec {
                name: "tiny",
                n_gates: 220,
                n_inputs: 18,
                n_outputs: 14,
                model_levels: 3,
                seed: 31,
                            depth: None,
},
            &PipelineConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn exact_selection_has_negligible_mc_error() {
        let pb = tiny();
        let dm = &pb.delay_model;
        let sel = exact_select(dm.a(), dm.mu_paths(), DEFAULT_KAPPA).unwrap();
        if sel.remaining.is_empty() {
            return; // every path representative: nothing to evaluate
        }
        let plan = MeasurementPlan::Paths {
            selected: &sel.selected,
            predictor: &sel.predictor,
        };
        let cfg = McConfig {
            n_samples: 200,
            seed: 5,
            threads: 2,
        };
        let m = evaluate(dm, &plan, &sel.remaining, &cfg).unwrap();
        assert!(m.e1 < 1e-6, "exact selection e1 = {}", m.e1);
        assert!(m.e2 <= m.e1);
    }

    #[test]
    fn e1_dominates_e2_and_per_path_stats_ordered() {
        let pb = tiny();
        let dm = &pb.delay_model;
        let sel = exact_select(dm.a(), dm.mu_paths(), DEFAULT_KAPPA).unwrap();
        if sel.remaining.is_empty() {
            return;
        }
        // Deliberately measure only half the representative paths so the
        // error is non-trivial.
        let half = &sel.selected[..sel.selected.len().div_ceil(2)];
        let gram = dm.a().matmul(&dm.a().transpose()).unwrap();
        let (pred, remaining) =
            pathrep_core::MeasurementPredictor::from_gram(&gram, dm.mu_paths(), half, 3.0)
                .unwrap();
        let plan = MeasurementPlan::Paths {
            selected: half,
            predictor: &pred,
        };
        let cfg = McConfig {
            n_samples: 300,
            seed: 6,
            threads: 3,
        };
        let m = evaluate(dm, &plan, &remaining, &cfg).unwrap();
        assert!(m.e1 >= m.e2);
        for (mx, av) in m.per_path_max.iter().zip(m.per_path_avg.iter()) {
            assert!(mx >= av);
        }
    }

    #[test]
    fn deterministic_given_seed_and_threads() {
        let pb = tiny();
        let dm = &pb.delay_model;
        let sel = exact_select(dm.a(), dm.mu_paths(), DEFAULT_KAPPA).unwrap();
        if sel.remaining.is_empty() {
            return;
        }
        let plan = MeasurementPlan::Paths {
            selected: &sel.selected,
            predictor: &sel.predictor,
        };
        let cfg = McConfig {
            n_samples: 100,
            seed: 11,
            threads: 2,
        };
        let a = evaluate(dm, &plan, &sel.remaining, &cfg).unwrap();
        let b = evaluate(dm, &plan, &sel.remaining, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_remaining_is_trivial() {
        let pb = tiny();
        let dm = &pb.delay_model;
        let sel = exact_select(dm.a(), dm.mu_paths(), DEFAULT_KAPPA).unwrap();
        let plan = MeasurementPlan::Paths {
            selected: &sel.selected,
            predictor: &sel.predictor,
        };
        let m = evaluate(dm, &plan, &[], &McConfig::default()).unwrap();
        assert_eq!(m.e1, 0.0);
        assert!(m.per_path_max.is_empty());
    }

    #[test]
    fn zero_samples_rejected() {
        let pb = tiny();
        let dm = &pb.delay_model;
        let sel = exact_select(dm.a(), dm.mu_paths(), DEFAULT_KAPPA).unwrap();
        let plan = MeasurementPlan::Paths {
            selected: &sel.selected,
            predictor: &sel.predictor,
        };
        let cfg = McConfig {
            n_samples: 0,
            ..McConfig::default()
        };
        assert!(evaluate(dm, &plan, &sel.remaining, &cfg).is_err());
    }
}
