//! Shared experiment front-end: circuit → timing constraint → target-path
//! extraction → linear delay model.

use crate::suite::BenchmarkSpec;
use pathrep_circuit::generator::{CircuitGenerator, PlacedCircuit};
use pathrep_circuit::paths::{decompose_into_segments, Path, SegmentDecomposition};
use pathrep_ssta::extract::{CriticalPathExtractor, ExtractConfig};
use pathrep_ssta::yield_est::{monte_carlo_circuit_yield, nominal_circuit_delay};
use pathrep_ssta::SparseDelayModel;
use pathrep_variation::model::VariationModel;
use pathrep_variation::sensitivity::DelayModel;
use std::error::Error;
use std::fmt;

/// Pipeline tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Timing constraint as a fraction of the nominal circuit delay
    /// (1.0 reproduces Table 1; < 1.0 tightens the constraint so more paths
    /// become statistically critical, growing `|P_tar|` for Table 2).
    pub t_cons_factor: f64,
    /// Path yield-loss threshold as a fraction of the circuit yield loss
    /// (the paper uses 0.01·(1 − Y)).
    pub yield_loss_fraction: f64,
    /// Cap on the extracted path count.
    pub max_paths: usize,
    /// Monte-Carlo samples for the circuit-yield estimate.
    pub yield_samples: usize,
    /// Seed for the yield estimate.
    pub seed: u64,
    /// Multiplier on the per-gate random σ (1.0 = calibrated budget; the
    /// paper's Figure-2(b)/Table-2 regime grows it, e.g. 3.0).
    pub random_scale: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            t_cons_factor: 1.0,
            yield_loss_fraction: 0.01,
            max_paths: 5_000,
            yield_samples: 2_000,
            seed: 7,
            random_scale: 1.0,
        }
    }
}

/// A benchmark prepared for selection experiments.
#[derive(Debug)]
pub struct PreparedBenchmark {
    /// The generated circuit.
    pub circuit: PlacedCircuit,
    /// The variation model in force.
    pub model: VariationModel,
    /// Timing constraint (ps).
    pub t_cons: f64,
    /// Monte-Carlo circuit timing yield at `t_cons`.
    pub circuit_yield: f64,
    /// The extracted target paths.
    pub paths: Vec<Path>,
    /// Their segment decomposition.
    pub decomposition: SegmentDecomposition,
    /// The linear delay model `d = µ + A·x`.
    pub delay_model: DelayModel,
}

impl PreparedBenchmark {
    /// `|P_tar|`.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// `|G_C|`: gates covered by the target paths.
    pub fn covered_gate_count(&self) -> usize {
        self.decomposition.covered_gates().len()
    }

    /// `|R_C|`: regions covered by the target paths.
    pub fn covered_region_count(&self) -> usize {
        self.delay_model.covered_region_count()
    }
}

/// Error from pipeline preparation.
#[derive(Debug)]
pub struct PrepareError {
    message: String,
}

impl fmt::Display for PrepareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline preparation failed: {}", self.message)
    }
}

impl Error for PrepareError {}

fn wrap<E: fmt::Display>(e: E) -> PrepareError {
    PrepareError {
        message: e.to_string(),
    }
}

/// Runs the full front-end for one benchmark.
///
/// # Errors
///
/// Returns [`PrepareError`] when generation, extraction or model
/// construction fails (e.g. no critical path qualifies — tighten
/// `t_cons_factor`).
/// Counters every experiment report carries even at zero — a Table-1 run
/// performs no ADMM solve, and the report should say so explicitly rather
/// than omit the row.
const STANDARD_COUNTERS: &[&str] = &[
    "convopt.admm.iterations",
    "core.approx.evaluations",
    "core.approx.selections",
    "core.exact.selections",
    "core.hybrid.selections",
    "core.subset.calls",
    "eval.mc.evaluations",
    "eval.mc.samples",
    "linalg.qr.pivoted_calls",
    "linalg.svd.calls",
    "ssta.extract.paths",
];

fn declare_standard_counters() {
    for name in STANDARD_COUNTERS {
        pathrep_obs::counter_add(name, 0);
    }
}

pub fn prepare(
    spec: &BenchmarkSpec,
    config: &PipelineConfig,
) -> Result<PreparedBenchmark, PrepareError> {
    declare_standard_counters();
    let _span = pathrep_obs::span!("prepare");
    let circuit = {
        let _g = pathrep_obs::span!("generate_circuit");
        CircuitGenerator::new(spec.generator_config())
            .generate()
            .map_err(wrap)?
    };
    let model = spec.variation_model().with_random_scale(config.random_scale);
    prepare_circuit(circuit, model, config)
}

/// [`prepare`] for an already-generated circuit (used by Figure 2, which
/// swaps the cell library while keeping topology).
///
/// # Errors
///
/// Same as [`prepare`].
pub fn prepare_circuit(
    circuit: PlacedCircuit,
    model: VariationModel,
    config: &PipelineConfig,
) -> Result<PreparedBenchmark, PrepareError> {
    let _span = pathrep_obs::span!("prepare_circuit");
    let nominal = nominal_circuit_delay(&circuit);
    let t_cons = nominal * config.t_cons_factor;
    let circuit_yield = {
        let _g = pathrep_obs::span!("circuit_yield");
        monte_carlo_circuit_yield(&circuit, &model, t_cons, config.yield_samples, config.seed)
    };
    // Paper: extract all paths with yield-loss > fraction·(1 − Y).
    let threshold = (config.yield_loss_fraction * (1.0 - circuit_yield)).max(1e-9);
    let extract_cfg =
        ExtractConfig::new(t_cons, threshold).with_max_paths(config.max_paths);
    let extracted = CriticalPathExtractor::new(&circuit, &model, extract_cfg).extract();
    if extracted.is_empty() {
        return Err(PrepareError {
            message: format!(
                "no statistically-critical paths at t_cons {t_cons:.1} ps \
                 (yield {circuit_yield:.3}, threshold {threshold:.2e})"
            ),
        });
    }
    let paths: Vec<Path> = extracted.into_iter().map(|e| e.path).collect();
    pathrep_obs::gauge_set("eval.pipeline.target_paths", paths.len() as f64);
    pathrep_obs::ledger::record("eval", "prepare", |f| {
        f.int("target_paths", paths.len() as u64)
            .num("t_cons", t_cons)
            .num("circuit_yield", circuit_yield)
            .num("yield_loss_threshold", threshold);
    });
    let (decomposition, delay_model) = {
        let _g = pathrep_obs::span!("build_delay_model");
        let decomposition = decompose_into_segments(&paths).map_err(wrap)?;
        let delay_model =
            DelayModel::build(&circuit, &paths, &decomposition, &model).map_err(wrap)?;
        (decomposition, delay_model)
    };
    Ok(PreparedBenchmark {
        circuit,
        model,
        t_cons,
        circuit_yield,
        paths,
        decomposition,
        delay_model,
    })
}

/// Tuning knobs for the sparse (large-instance) front-end.
///
/// The dense pipeline sizes `P_tar` by a Monte-Carlo yield threshold;
/// at 100k+ gates that estimate is itself a heavy dense computation, and
/// the threshold census can explode. The sparse front-end instead asks
/// for the `k` statistically-most-critical paths directly
/// ([`CriticalPathExtractor::extract_k_best`]) and assembles the delay
/// model in CSR form end-to-end.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsePipelineConfig {
    /// Timing constraint as a fraction of the nominal circuit delay.
    pub t_cons_factor: f64,
    /// Number of target paths to enumerate (`|P_tar| ≤ k`).
    pub k_paths: usize,
}

impl Default for SparsePipelineConfig {
    fn default() -> Self {
        SparsePipelineConfig {
            t_cons_factor: 1.0,
            k_paths: 1_000,
        }
    }
}

/// A benchmark prepared for sketched-selection experiments: same shape as
/// [`PreparedBenchmark`] minus the Monte-Carlo yield, with the delay model
/// held in CSR form.
#[derive(Debug)]
pub struct PreparedSparseBenchmark {
    /// The generated circuit.
    pub circuit: PlacedCircuit,
    /// The variation model in force.
    pub model: VariationModel,
    /// Timing constraint (ps).
    pub t_cons: f64,
    /// The extracted target paths (k-best order).
    pub paths: Vec<Path>,
    /// Their segment decomposition.
    pub decomposition: SegmentDecomposition,
    /// The sparse linear delay model `d = µ + A·x`.
    pub delay_model: SparseDelayModel,
}

impl PreparedSparseBenchmark {
    /// `|P_tar|`.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }
}

/// Runs the sparse front-end for one benchmark: generate → k-best path
/// enumeration → segment decomposition → CSR delay model. No Monte-Carlo
/// yield estimate is performed (see [`SparsePipelineConfig`]).
///
/// # Errors
///
/// Returns [`PrepareError`] when generation, extraction or model
/// construction fails.
pub fn prepare_sparse(
    spec: &BenchmarkSpec,
    config: &SparsePipelineConfig,
) -> Result<PreparedSparseBenchmark, PrepareError> {
    declare_standard_counters();
    let _span = pathrep_obs::span!("prepare_sparse");
    let circuit = {
        let _g = pathrep_obs::span!("generate_circuit");
        CircuitGenerator::new(spec.generator_config())
            .generate()
            .map_err(wrap)?
    };
    let model = spec.variation_model();
    let nominal = nominal_circuit_delay(&circuit);
    let t_cons = nominal * config.t_cons_factor;
    // The threshold is irrelevant in k-best mode; t_cons still anchors the
    // per-path criticality scores.
    let extract_cfg = ExtractConfig::new(t_cons, 1e-6);
    let extracted =
        CriticalPathExtractor::new(&circuit, &model, extract_cfg).extract_k_best(config.k_paths);
    if extracted.is_empty() {
        return Err(PrepareError {
            message: format!("k-best extraction returned no paths at t_cons {t_cons:.1} ps"),
        });
    }
    let paths: Vec<Path> = extracted.into_iter().map(|e| e.path).collect();
    pathrep_obs::gauge_set("eval.pipeline.target_paths", paths.len() as f64);
    let (decomposition, delay_model) = {
        let _g = pathrep_obs::span!("build_delay_model");
        let decomposition = decompose_into_segments(&paths).map_err(wrap)?;
        let delay_model =
            SparseDelayModel::build(&circuit, &paths, &decomposition, &model).map_err(wrap)?;
        (decomposition, delay_model)
    };
    pathrep_obs::ledger::record("eval", "prepare_sparse", |f| {
        f.int("target_paths", paths.len() as u64)
            .int("segments", decomposition.segment_count() as u64)
            .int("variables", delay_model.variable_count() as u64)
            .int("nnz_a", delay_model.a().nnz() as u64)
            .num("t_cons", t_cons);
    });
    Ok(PreparedSparseBenchmark {
        circuit,
        model,
        t_cons,
        paths,
        decomposition,
        delay_model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::BenchmarkSpec;

    fn tiny_spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "tiny",
            n_gates: 250,
            n_inputs: 20,
            n_outputs: 16,
            model_levels: 3,
            seed: 12,
                        depth: None,
}
    }

    #[test]
    fn prepared_benchmark_is_send_and_sync() {
        // Compile-time assertion: the bench harness shares one
        // `Arc<PreparedBenchmark>` across workloads, and pathrep-par workers
        // read it from pool threads. A non-Send field sneaking in (Rc, raw
        // pointer, RefCell) must fail here, not in a downstream crate.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PreparedBenchmark>();
    }

    #[test]
    fn prepare_produces_consistent_model() {
        let pb = prepare(&tiny_spec(), &PipelineConfig::default()).unwrap();
        assert!(pb.path_count() >= 1);
        assert_eq!(pb.delay_model.a().nrows(), pb.path_count());
        assert_eq!(
            pb.delay_model.g().ncols(),
            pb.decomposition.segment_count()
        );
        assert!(pb.covered_gate_count() <= 250);
        assert!(pb.covered_region_count() <= 21);
        assert!(pb.t_cons > 0.0);
        assert!((0.0..=1.0).contains(&pb.circuit_yield));
    }

    #[test]
    fn tighter_constraint_grows_path_pool() {
        let base = prepare(&tiny_spec(), &PipelineConfig::default()).unwrap();
        let tight = prepare(
            &tiny_spec(),
            &PipelineConfig {
                t_cons_factor: 0.95,
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        assert!(
            tight.path_count() >= base.path_count(),
            "tightening T_cons must not shrink |P_tar| ({} vs {})",
            tight.path_count(),
            base.path_count()
        );
    }

    #[test]
    fn rank_bounded_by_segment_count() {
        // Lemma 1: rank(A) ≤ n_S.
        let pb = prepare(&tiny_spec(), &PipelineConfig::default()).unwrap();
        let svd = pathrep_linalg::svd::Svd::compute(pb.delay_model.a()).unwrap();
        assert!(svd.rank(1e-9) <= pb.decomposition.segment_count());
    }

    #[test]
    fn determinism() {
        let a = prepare(&tiny_spec(), &PipelineConfig::default()).unwrap();
        let b = prepare(&tiny_spec(), &PipelineConfig::default()).unwrap();
        assert_eq!(a.path_count(), b.path_count());
        assert_eq!(a.t_cons, b.t_cons);
        assert!(a.delay_model.a().approx_eq(b.delay_model.a(), 0.0));
    }

    #[test]
    fn prepare_sparse_produces_consistent_model() {
        let cfg = SparsePipelineConfig {
            k_paths: 50,
            ..SparsePipelineConfig::default()
        };
        let pb = prepare_sparse(&tiny_spec(), &cfg).unwrap();
        assert_eq!(pb.path_count(), 50, "k-best must fill the request");
        assert_eq!(pb.delay_model.a().nrows(), pb.path_count());
        assert_eq!(
            pb.delay_model.g().ncols(),
            pb.decomposition.segment_count()
        );
        assert!(pb.t_cons > 0.0);
        // The model is genuinely sparse, not a dense matrix in disguise.
        assert!(pb.delay_model.a().density() < 0.5);
    }

    #[test]
    fn prepare_sparse_agrees_with_dense_on_shared_paths() {
        // Same circuit, same paths ⇒ the CSR model must match the dense
        // builder. prepare() and prepare_sparse() pick paths differently,
        // so rebuild the dense model on the sparse pipeline's paths.
        let cfg = SparsePipelineConfig {
            k_paths: 40,
            ..SparsePipelineConfig::default()
        };
        let pb = prepare_sparse(&tiny_spec(), &cfg).unwrap();
        let dense =
            DelayModel::build(&pb.circuit, &pb.paths, &pb.decomposition, &pb.model).unwrap();
        assert!(pb.delay_model.a().to_dense().approx_eq(dense.a(), 0.0));
        assert_eq!(pb.delay_model.mu_paths(), dense.mu_paths());
    }

    #[test]
    fn prepare_sparse_determinism() {
        let cfg = SparsePipelineConfig {
            k_paths: 30,
            ..SparsePipelineConfig::default()
        };
        let a = prepare_sparse(&tiny_spec(), &cfg).unwrap();
        let b = prepare_sparse(&tiny_spec(), &cfg).unwrap();
        assert_eq!(a.path_count(), b.path_count());
        assert_eq!(a.t_cons.to_bits(), b.t_cons.to_bits());
        assert!(a.delay_model.a().to_dense().approx_eq(&b.delay_model.a().to_dense(), 0.0));
    }
}
