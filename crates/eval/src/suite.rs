//! The ten ISCAS'89-class benchmark configurations.
//!
//! Real ISCAS'89 netlists (synthesized with a commercial library) are not
//! redistributable; these specs drive the synthetic generator to circuits
//! of matching scale. Gate counts for the four largest circuits are scaled
//! down (≈4×) to keep the dense SVD of `A` tractable on one machine — the
//! quantity that matters for the method is the *target-path* count and the
//! variation dimension, both of which match the paper's ranges (see
//! DESIGN.md, "Substitutions"). Region counts `|R|` match the paper's
//! tables exactly: 21 (3-level model) for the small circuits, 341 (5-level)
//! for the large ones.

use pathrep_circuit::generator::GeneratorConfig;
use pathrep_variation::model::VariationModel;

/// One benchmark configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// ISCAS'89-style name.
    pub name: &'static str,
    /// Gate count of the generated circuit.
    pub n_gates: usize,
    /// Primary inputs (≈ flip-flop count of the original).
    pub n_inputs: usize,
    /// Primary outputs.
    pub n_outputs: usize,
    /// Quad-tree levels of the spatial model (3 ⇒ 21 regions, 5 ⇒ 341).
    pub model_levels: usize,
    /// Generator seed (fixed per benchmark for reproducibility).
    pub seed: u64,
    /// Logic depth. The paper synthesizes for minimum area under a
    /// *stringent timing constraint*, which keeps logic depth low (10–20
    /// levels) regardless of size; `None` uses the generator's default.
    pub depth: Option<usize>,
}

impl BenchmarkSpec {
    /// Generator configuration for this spec.
    pub fn generator_config(&self) -> GeneratorConfig {
        let cfg =
            GeneratorConfig::new(self.n_gates, self.n_inputs, self.n_outputs).with_seed(self.seed);
        match self.depth {
            Some(d) => cfg.with_depth(d),
            None => cfg,
        }
    }

    /// Variation model for this spec (6 % per-gate random share, as in the
    /// paper).
    pub fn variation_model(&self) -> VariationModel {
        VariationModel::new(self.model_levels, 0.06)
    }

    /// Total region count `|R|` of the spatial model.
    pub fn region_count(&self) -> usize {
        self.variation_model().hierarchy().region_count()
    }
}

/// The benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Suite;

impl Suite {
    /// All ten paper benchmarks, smallest first.
    pub fn all() -> Vec<BenchmarkSpec> {
        vec![
            spec("s1196", 550, 32, 32, 3, 101, 10),
            spec("s1238", 530, 32, 32, 3, 102, 10),
            spec("s1423", 660, 91, 79, 3, 103, 12),
            spec("s5378", 1400, 199, 213, 3, 104, 12),
            spec("s9234", 2000, 228, 250, 5, 105, 14),
            spec("s13207", 2600, 669, 790, 5, 106, 14),
            spec("s15850", 3000, 611, 684, 5, 107, 16),
            spec("s35932", 4200, 1728, 2048, 5, 108, 12),
            spec("s38417", 5200, 1636, 1742, 5, 109, 16),
            spec("s38584", 4800, 1452, 1730, 5, 110, 16),
        ]
    }

    /// A benchmark by name.
    pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
        Self::all().into_iter().find(|s| s.name == name)
    }

    /// A small, fast subset used by tests and the criterion benches.
    pub fn small() -> Vec<BenchmarkSpec> {
        Self::all().into_iter().take(3).collect()
    }

    /// The 100k-gate-class instance for the sparse/sketched pipeline.
    /// Unlike [`Suite::all`] (scaled down ≈4× to keep the dense SVD
    /// tractable), this spec is deliberately past the dense ceiling: the
    /// full `A` would not fit a dense SVD budget, which is exactly what
    /// the `*_large` workloads demonstrate.
    pub fn large() -> BenchmarkSpec {
        spec("xl120k", 120_000, 4096, 4096, 5, 120, 24)
    }
}

fn spec(
    name: &'static str,
    n_gates: usize,
    n_inputs: usize,
    n_outputs: usize,
    model_levels: usize,
    seed: u64,
    depth: usize,
) -> BenchmarkSpec {
    BenchmarkSpec {
        name,
        n_gates,
        n_inputs,
        n_outputs,
        model_levels,
        seed,
        depth: Some(depth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_benchmarks_with_paper_region_counts() {
        let all = Suite::all();
        assert_eq!(all.len(), 10);
        for s in &all {
            let r = s.region_count();
            assert!(r == 21 || r == 341, "{} has |R| = {r}", s.name);
        }
        assert_eq!(Suite::by_name("s1423").unwrap().region_count(), 21);
        assert_eq!(Suite::by_name("s38417").unwrap().region_count(), 341);
    }

    #[test]
    fn names_unique_and_lookup_works() {
        let all = Suite::all();
        let mut names: Vec<&str> = all.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
        assert!(Suite::by_name("nope").is_none());
    }

    #[test]
    fn generator_configs_are_valid() {
        for s in Suite::small() {
            let c = pathrep_circuit::generator::CircuitGenerator::new(s.generator_config())
                .generate()
                .unwrap();
            assert_eq!(c.netlist().gate_count(), s.n_gates);
        }
    }
}
