//! Table 2: hybrid path/segment selection vs approximate path selection.
//!
//! The constraint is tightened (`t_cons_factor < 1`) so the statistically
//! critical pool grows to thousands of paths (the paper relaxes its
//! synthesis constraint to the same effect), ε is set to 8 %, and the
//! hybrid ε′ is swept below ε keeping the candidate with the fewest total
//! measurements.

use crate::experiments::ExperimentError;
use crate::metrics::{evaluate, McConfig, MeasurementPlan};
use crate::pipeline::{prepare, PipelineConfig};
use crate::report::{pct, Table};
use crate::suite::{BenchmarkSpec, Suite};
use pathrep_core::approx::{approx_select_with, ApproxConfig};
use pathrep_core::hybrid::{hybrid_select_sweep_with, HybridConfig, HybridInputs};
use pathrep_core::ModelFactors;

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Total gate count `|G|`.
    pub gates: usize,
    /// Total region count `|R|`.
    pub regions: usize,
    /// Gates covered by the targets `|G_C|`.
    pub covered_gates: usize,
    /// Regions covered by the targets `|R_C|`.
    pub covered_regions: usize,
    /// Extracted target paths `|P_tar|`.
    pub n_tar: usize,
    /// Approximate path selection size.
    pub approx_paths: usize,
    /// Approximate selection `e1`.
    pub approx_e1: f64,
    /// Approximate selection `e2`.
    pub approx_e2: f64,
    /// Hybrid: directly measured paths `|P_r|`.
    pub hybrid_paths: usize,
    /// Hybrid: selected segments `|S_r|`.
    pub hybrid_segments: usize,
    /// Hybrid `e1`.
    pub hybrid_e1: f64,
    /// Hybrid `e2`.
    pub hybrid_e2: f64,
}

impl Table2Row {
    /// Total hybrid measurements `|P_r| + |S_r|`.
    pub fn hybrid_total(&self) -> usize {
        self.hybrid_paths + self.hybrid_segments
    }
}

/// Options for the Table-2 run.
#[derive(Debug, Clone)]
pub struct Table2Options {
    /// Benchmarks to run.
    pub specs: Vec<BenchmarkSpec>,
    /// Error tolerance ε (paper: 0.08).
    pub epsilon: f64,
    /// ε′ sweep candidates (all < ε).
    pub eps_prime_candidates: Vec<f64>,
    /// Pipeline configuration; `t_cons_factor < 1` grows `|P_tar|`.
    pub pipeline: PipelineConfig,
    /// Monte-Carlo configuration.
    pub mc: McConfig,
    /// Benchmark that runs at the paper's full headline scale (~3 500
    /// target paths); every other benchmark uses `pipeline.max_paths`.
    /// Dense single-machine SVD makes the full scale minutes-per-benchmark,
    /// so it is reserved for the paper's own headline circuit.
    pub headline: (&'static str, usize),
}

impl Default for Table2Options {
    fn default() -> Self {
        Table2Options {
            specs: Suite::all(),
            epsilon: 0.08,
            eps_prime_candidates: vec![0.06, 0.07],
            // Section 5 / Figure 2(b): the hybrid approach targets the
            // scaled-technology regime where the extent of independent
            // random variation has grown; 3× matches the paper's own
            // Figure-2(b) configuration.
            pipeline: PipelineConfig {
                t_cons_factor: 0.98,
                max_paths: 1_200,
                random_scale: 3.0,
                ..PipelineConfig::default()
            },
            mc: McConfig::default(),
            headline: ("s38417", 3_600),
        }
    }
}

impl Table2Options {
    /// A reduced configuration for quick runs and benches.
    pub fn fast() -> Self {
        Table2Options {
            specs: Suite::small(),
            eps_prime_candidates: vec![0.04],
            pipeline: PipelineConfig {
                t_cons_factor: 0.98,
                max_paths: 600,
                random_scale: 3.0,
                ..PipelineConfig::default()
            },
            mc: McConfig {
                n_samples: 1_000,
                ..McConfig::default()
            },
            ..Table2Options::default()
        }
    }
}

/// Runs the Table-2 experiment for one benchmark.
///
/// # Errors
///
/// Returns [`ExperimentError`] when any stage fails.
pub fn run_one(spec: &BenchmarkSpec, opts: &Table2Options) -> Result<Table2Row, ExperimentError> {
    let _span = pathrep_obs::span!(spec.name);
    let mut pipeline = opts.pipeline.clone();
    if spec.name == opts.headline.0 {
        pipeline.max_paths = opts.headline.1;
    }
    let pb = prepare(spec, &pipeline).map_err(ExperimentError::new)?;
    let dm = &pb.delay_model;
    let factors = ModelFactors::compute(dm.a()).map_err(ExperimentError::new)?;

    // Approximate path selection at ε.
    let approx = approx_select_with(
        dm.a(),
        dm.mu_paths(),
        &ApproxConfig::new(opts.epsilon, pb.t_cons),
        &factors,
    )
    .map_err(ExperimentError::new)?;
    let approx_metrics = evaluate(
        dm,
        &MeasurementPlan::Paths {
            selected: &approx.selected,
            predictor: &approx.predictor,
        },
        &approx.remaining,
        &opts.mc,
    )
    .map_err(ExperimentError::new)?;

    // Hybrid path/segment selection with the ε′ sweep.
    let inputs = HybridInputs {
        g: dm.g(),
        sigma: dm.sigma(),
        a: dm.a(),
        mu_segments: dm.mu_segments(),
        mu_paths: dm.mu_paths(),
    };
    let base = HybridConfig::new(
        opts.epsilon,
        opts.eps_prime_candidates.first().copied().unwrap_or(0.04),
        pb.t_cons,
    );
    let hybrid =
        hybrid_select_sweep_with(&inputs, &base, &opts.eps_prime_candidates, &factors)
            .map_err(ExperimentError::new)?;
    let hybrid_metrics = evaluate(
        dm,
        &MeasurementPlan::Hybrid {
            selection: &hybrid,
        },
        &hybrid.remaining,
        &opts.mc,
    )
    .map_err(ExperimentError::new)?;

    Ok(Table2Row {
        name: spec.name.to_string(),
        gates: spec.n_gates,
        regions: spec.region_count(),
        covered_gates: pb.covered_gate_count(),
        covered_regions: pb.covered_region_count(),
        n_tar: pb.path_count(),
        approx_paths: approx.selected.len(),
        approx_e1: approx_metrics.e1,
        approx_e2: approx_metrics.e2,
        hybrid_paths: hybrid.paths.len(),
        hybrid_segments: hybrid.segments.len(),
        hybrid_e1: hybrid_metrics.e1,
        hybrid_e2: hybrid_metrics.e2,
    })
}

/// Runs the full Table-2 experiment.
///
/// # Errors
///
/// Returns the first [`ExperimentError`] encountered.
pub fn run(opts: &Table2Options) -> Result<Vec<Table2Row>, ExperimentError> {
    opts.specs.iter().map(|s| run_one(s, opts)).collect()
}

/// Renders rows in the paper's Table-2 layout, with the `Ave` row.
pub fn render(rows: &[Table2Row]) -> String {
    let mut t = Table::new([
        "BENCH", "|G|", "|R|", "|Gc|", "|Rc|", "|Ptar|", "|Pr|apx", "e1%", "e2%", "|Pr|",
        "|Sr|", "|Pr|+|Sr|", "e1%", "e2%",
    ]);
    for r in rows {
        t.push_row([
            r.name.clone(),
            r.gates.to_string(),
            r.regions.to_string(),
            r.covered_gates.to_string(),
            r.covered_regions.to_string(),
            r.n_tar.to_string(),
            r.approx_paths.to_string(),
            pct(r.approx_e1),
            pct(r.approx_e2),
            r.hybrid_paths.to_string(),
            r.hybrid_segments.to_string(),
            r.hybrid_total().to_string(),
            pct(r.hybrid_e1),
            pct(r.hybrid_e2),
        ]);
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        let avg_usize = |f: &dyn Fn(&Table2Row) -> usize| {
            format!("{:.1}", rows.iter().map(f).sum::<usize>() as f64 / n)
        };
        t.push_row([
            "Ave".to_string(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            avg_usize(&|r| r.approx_paths),
            pct(rows.iter().map(|r| r.approx_e1).sum::<f64>() / n),
            pct(rows.iter().map(|r| r.approx_e2).sum::<f64>() / n),
            avg_usize(&|r| r.hybrid_paths),
            avg_usize(&|r| r.hybrid_segments),
            avg_usize(&|r| r.hybrid_total()),
            pct(rows.iter().map(|r| r.hybrid_e1).sum::<f64>() / n),
            pct(rows.iter().map(|r| r.hybrid_e2).sum::<f64>() / n),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Table2Options {
        Table2Options {
            specs: vec![BenchmarkSpec {
                name: "tiny",
                n_gates: 240,
                n_inputs: 20,
                n_outputs: 16,
                model_levels: 3,
                seed: 61,
                            depth: None,
}],
            epsilon: 0.08,
            eps_prime_candidates: vec![0.03, 0.05],
            pipeline: PipelineConfig {
                t_cons_factor: 0.98,
                max_paths: 250,
                ..PipelineConfig::default()
            },
            mc: McConfig {
                n_samples: 250,
                seed: 2,
                threads: 2,
            },
            headline: ("none", 0),
        }
    }

    #[test]
    fn hybrid_row_is_consistent() {
        let rows = run(&tiny_opts()).unwrap();
        let r = &rows[0];
        assert!(r.covered_gates <= r.gates);
        assert!(r.covered_regions <= r.regions);
        assert!(r.hybrid_total() >= 1);
        // The hybrid errors respect the ε = 8 % regime.
        assert!(r.hybrid_e1 < 0.1, "hybrid e1 = {}", r.hybrid_e1);
        assert!(r.approx_e1 < 0.1, "approx e1 = {}", r.approx_e1);
    }

    #[test]
    fn render_has_all_columns() {
        let rows = run(&tiny_opts()).unwrap();
        let s = render(&rows);
        assert!(s.contains("|Pr|+|Sr|"));
        assert!(s.contains("Ave"));
    }
}
