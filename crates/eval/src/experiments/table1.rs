//! Table 1: exact vs approximate representative-path selection.
//!
//! For each benchmark: set `T_cons` to the nominal circuit delay, extract
//! all paths with yield-loss above `0.01·(1 − Y)`, then report the exact
//! selection size `rank(A)`, the approximate selection size at `ε = 5 %`,
//! and the Monte-Carlo errors `e1`, `e2` of the approximate predictor.

use crate::experiments::ExperimentError;
use crate::metrics::{evaluate, McConfig, MeasurementPlan};
use crate::pipeline::{prepare, PipelineConfig};
use crate::report::{pct, Table};
use crate::suite::{BenchmarkSpec, Suite};
use pathrep_core::approx::{approx_select, ApproxConfig};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Total gate count `|G|`.
    pub gates: usize,
    /// Total region count `|R|`.
    pub regions: usize,
    /// Extracted target paths `|P_tar|`.
    pub n_tar: usize,
    /// Exact selection size `|P_r|` = rank(A).
    pub r_exact: usize,
    /// Approximate selection size at ε = 5 %.
    pub r_approx: usize,
    /// Monte-Carlo `e1` (average max relative error).
    pub e1: f64,
    /// Monte-Carlo `e2` (average mean relative error).
    pub e2: f64,
}

/// Options for the Table-1 run.
#[derive(Debug, Clone)]
pub struct Table1Options {
    /// Benchmarks to run.
    pub specs: Vec<BenchmarkSpec>,
    /// Error tolerance ε for Algorithm 1 (paper: 0.05).
    pub epsilon: f64,
    /// Pipeline configuration (paper: `T_cons` = nominal delay).
    pub pipeline: PipelineConfig,
    /// Monte-Carlo configuration (paper: 10 000 samples).
    pub mc: McConfig,
}

impl Default for Table1Options {
    fn default() -> Self {
        Table1Options {
            specs: Suite::all(),
            epsilon: 0.05,
            // The synthetic circuits are denser near the critical region
            // than the ISCAS originals; capping at the 800 most-critical
            // paths (best-first extraction) keeps |P_tar| in the paper's
            // Table-1 range without changing the method.
            pipeline: PipelineConfig {
                max_paths: 800,
                ..PipelineConfig::default()
            },
            mc: McConfig::default(),
        }
    }
}

impl Table1Options {
    /// A reduced configuration for quick runs and benches.
    pub fn fast() -> Self {
        Table1Options {
            specs: Suite::small(),
            mc: McConfig {
                n_samples: 1_000,
                ..McConfig::default()
            },
            ..Table1Options::default()
        }
    }
}

/// Runs the Table-1 experiment for one benchmark.
///
/// # Errors
///
/// Returns [`ExperimentError`] when any pipeline stage fails.
pub fn run_one(spec: &BenchmarkSpec, opts: &Table1Options) -> Result<Table1Row, ExperimentError> {
    let _span = pathrep_obs::span!(spec.name);
    let pb = prepare(spec, &opts.pipeline).map_err(ExperimentError::new)?;
    let dm = &pb.delay_model;
    let approx = approx_select(
        dm.a(),
        dm.mu_paths(),
        &ApproxConfig::new(opts.epsilon, pb.t_cons),
    )
    .map_err(ExperimentError::new)?;
    let metrics = evaluate(
        dm,
        &MeasurementPlan::Paths {
            selected: &approx.selected,
            predictor: &approx.predictor,
        },
        &approx.remaining,
        &opts.mc,
    )
    .map_err(ExperimentError::new)?;
    Ok(Table1Row {
        name: spec.name.to_string(),
        gates: spec.n_gates,
        regions: spec.region_count(),
        n_tar: pb.path_count(),
        r_exact: approx.rank,
        r_approx: approx.selected.len(),
        e1: metrics.e1,
        e2: metrics.e2,
    })
}

/// Runs the full Table-1 experiment.
///
/// # Errors
///
/// Returns the first [`ExperimentError`] encountered.
pub fn run(opts: &Table1Options) -> Result<Vec<Table1Row>, ExperimentError> {
    opts.specs.iter().map(|s| run_one(s, opts)).collect()
}

/// Renders rows in the paper's Table-1 layout, with the `Ave` row.
pub fn render(rows: &[Table1Row]) -> String {
    let mut t = Table::new([
        "BENCH", "|G|", "|R|", "|Ptar|", "|Pr| exact", "|Pr| approx", "e1%", "e2%",
    ]);
    for r in rows {
        t.push_row([
            r.name.clone(),
            r.gates.to_string(),
            r.regions.to_string(),
            r.n_tar.to_string(),
            r.r_exact.to_string(),
            r.r_approx.to_string(),
            pct(r.e1),
            pct(r.e2),
        ]);
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        t.push_row([
            "Ave".to_string(),
            String::new(),
            String::new(),
            String::new(),
            format!("{:.1}", rows.iter().map(|r| r.r_exact).sum::<usize>() as f64 / n),
            format!("{:.1}", rows.iter().map(|r| r.r_approx).sum::<usize>() as f64 / n),
            pct(rows.iter().map(|r| r.e1).sum::<f64>() / n),
            pct(rows.iter().map(|r| r.e2).sum::<f64>() / n),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Table1Options {
        Table1Options {
            specs: vec![BenchmarkSpec {
                name: "tiny",
                n_gates: 220,
                n_inputs: 18,
                n_outputs: 14,
                model_levels: 3,
                seed: 51,
                            depth: None,
}],
            epsilon: 0.05,
            pipeline: PipelineConfig::default(),
            mc: McConfig {
                n_samples: 300,
                seed: 1,
                threads: 2,
            },
        }
    }

    #[test]
    fn row_is_paper_shaped() {
        let rows = run(&tiny_opts()).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        // Approximate never exceeds exact; exact never exceeds |P_tar|.
        assert!(r.r_approx <= r.r_exact);
        assert!(r.r_exact <= r.n_tar);
        // Errors bounded by the tolerance regime (ε = 5 % with κ = 3 gives
        // e1 comfortably below ~5 %).
        assert!(r.e1 < 0.06, "e1 = {}", r.e1);
        assert!(r.e2 <= r.e1);
    }

    #[test]
    fn render_includes_average_row() {
        let rows = run(&tiny_opts()).unwrap();
        let s = render(&rows);
        assert!(s.contains("Ave"));
        assert!(s.contains("tiny"));
        assert!(s.contains("e1%"));
    }
}
