//! Figure 2: normalized singular values of `A` under two configurations.
//!
//! (a) the base variation model; (b) the per-gate *random* sensitivities
//! scaled ×3, which flattens the singular-value decay and shows why more
//! representative paths are needed when independent random variation grows.

use crate::experiments::ExperimentError;
use crate::pipeline::{prepare, PipelineConfig};
use crate::suite::{BenchmarkSpec, Suite};
use pathrep_linalg::svd::Svd;
use pathrep_linalg::Matrix;
use pathrep_variation::model::Variable;
use pathrep_variation::sensitivity::DelayModel;

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure2Series {
    /// Configuration label.
    pub label: String,
    /// First `k` normalized singular values `λ_i / Σλ`.
    pub values: Vec<f64>,
    /// rank(A).
    pub rank: usize,
    /// Effective rank at η = 5 %.
    pub effective_rank: usize,
}

/// The two-series figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure2 {
    /// Series (a): base configuration.
    pub base: Figure2Series,
    /// Series (b): random sensitivities ×3.
    pub scaled: Figure2Series,
}

/// Options for the Figure-2 run.
#[derive(Debug, Clone)]
pub struct Figure2Options {
    /// Benchmark (paper: s1423).
    pub spec: BenchmarkSpec,
    /// Number of leading singular values plotted (paper: 30).
    pub k: usize,
    /// Random-sensitivity scale of configuration (b) (paper: 3×).
    pub random_scale: f64,
    /// Pipeline configuration.
    pub pipeline: PipelineConfig,
}

impl Default for Figure2Options {
    fn default() -> Self {
        Figure2Options {
            spec: Suite::by_name("s1423").expect("s1423 is in the suite"),
            k: 30,
            random_scale: 3.0,
            // Same most-critical-800 pool as the Table-1 run.
            pipeline: PipelineConfig {
                max_paths: 800,
                ..PipelineConfig::default()
            },
        }
    }
}

fn series(label: &str, a: &Matrix, k: usize) -> Result<Figure2Series, ExperimentError> {
    let svd = Svd::compute(a).map_err(ExperimentError::new)?;
    let normalized = svd.normalized_singular_values();
    Ok(Figure2Series {
        label: label.to_string(),
        values: normalized.into_iter().take(k).collect(),
        rank: svd.rank(1e-9),
        effective_rank: svd.effective_rank(0.05).map_err(ExperimentError::new)?,
    })
}

/// Scales the columns of `A` belonging to per-gate random variables.
fn scale_random_columns(dm: &DelayModel, scale: f64) -> Matrix {
    let mut a = dm.a().clone();
    for (j, v) in dm.variables().iter().enumerate() {
        if matches!(v, Variable::GateRandom { .. }) {
            for i in 0..a.nrows() {
                a[(i, j)] *= scale;
            }
        }
    }
    a
}

/// Runs the Figure-2 experiment.
///
/// # Errors
///
/// Returns [`ExperimentError`] when the pipeline or SVD fails.
pub fn run(opts: &Figure2Options) -> Result<Figure2, ExperimentError> {
    let pb = prepare(&opts.spec, &opts.pipeline).map_err(ExperimentError::new)?;
    let dm = &pb.delay_model;
    let base = series("(a) base", dm.a(), opts.k)?;
    let scaled_a = scale_random_columns(dm, opts.random_scale);
    let scaled = series(
        &format!("(b) random x{:.0}", opts.random_scale),
        &scaled_a,
        opts.k,
    )?;
    Ok(Figure2 { base, scaled })
}

/// Renders the two series as aligned columns (log-scale values printed in
/// scientific notation, like the paper's log-linear axis).
pub fn render(fig: &Figure2) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Normalized singular values of A — {} (rank {}, eff.rank {}) vs {} (rank {}, eff.rank {})\n",
        fig.base.label,
        fig.base.rank,
        fig.base.effective_rank,
        fig.scaled.label,
        fig.scaled.rank,
        fig.scaled.effective_rank
    ));
    out.push_str(&format!("{:>5}  {:>12}  {:>12}\n", "i", "base", "scaled"));
    for i in 0..fig.base.values.len().max(fig.scaled.values.len()) {
        let b = fig
            .base
            .values
            .get(i)
            .map(|v| format!("{v:.4e}"))
            .unwrap_or_default();
        let s = fig
            .scaled
            .values
            .get(i)
            .map(|v| format!("{v:.4e}"))
            .unwrap_or_default();
        out.push_str(&format!("{:>5}  {:>12}  {:>12}\n", i + 1, b, s));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Figure2Options {
        Figure2Options {
            spec: BenchmarkSpec {
                name: "tiny",
                n_gates: 260,
                n_inputs: 22,
                n_outputs: 18,
                model_levels: 3,
                seed: 71,
                            depth: None,
},
            k: 20,
            random_scale: 3.0,
            pipeline: PipelineConfig::default(),
        }
    }

    #[test]
    fn values_normalized_and_sorted() {
        let fig = run(&tiny_opts()).unwrap();
        for s in [&fig.base, &fig.scaled] {
            assert!(!s.values.is_empty());
            for w in s.values.windows(2) {
                assert!(w[0] >= w[1] - 1e-15, "singular values must decay");
            }
            assert!(s.values[0] <= 1.0);
        }
    }

    #[test]
    fn random_scaling_flattens_the_spectrum() {
        // The paper's qualitative claim: with 3× random sensitivity, the
        // spectrum decays slower, so the effective rank grows.
        let fig = run(&tiny_opts()).unwrap();
        assert!(
            fig.scaled.effective_rank >= fig.base.effective_rank,
            "scaled eff.rank {} < base {}",
            fig.scaled.effective_rank,
            fig.base.effective_rank
        );
        // And the tail carries more relative energy.
        let tail = |s: &Figure2Series| -> f64 { s.values.iter().skip(5).sum() };
        assert!(tail(&fig.scaled) >= tail(&fig.base) * 0.99);
    }

    #[test]
    fn render_has_header_and_rows() {
        let fig = run(&tiny_opts()).unwrap();
        let s = render(&fig);
        assert!(s.contains("eff.rank"));
        assert!(s.lines().count() >= 5);
    }
}
