//! Guard-band analysis (Section 6.3).
//!
//! After approximate selection, each predicted path `i` carries a per-path
//! relative error bound `ε_i = κ·std(Δ_i)/T_cons`. The guard-band
//! `φ_i = ε_i·T_cons` lets post-silicon validation classify paths with
//! full confidence: a predicted delay outside the band is a certain
//! pass/fail, only in-band paths need direct measurement. The experiment
//! verifies on Monte-Carlo samples that confident verdicts are never wrong
//! and reports how decisive the band is.

use crate::experiments::ExperimentError;
use crate::metrics::McConfig;
use crate::pipeline::{prepare, PipelineConfig};
use crate::report::{pct, Table};
use crate::suite::{BenchmarkSpec, Suite};
use pathrep_core::approx::{approx_select, ApproxConfig};
use pathrep_core::guardband::GuardBandOutcome;
use pathrep_variation::sampler::VariationSampler;

/// One benchmark's guard-band summary.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardBandRow {
    /// Benchmark name.
    pub name: String,
    /// The pre-specified tolerance ε of the selection.
    pub epsilon: f64,
    /// Average per-path analytic guard-band `mean(ε_i)` (the quantity the
    /// paper compares to `e1`).
    pub avg_band: f64,
    /// Largest per-path guard-band `max(ε_i)`.
    pub max_band: f64,
    /// Monte-Carlo verdict statistics.
    pub outcome: GuardBandOutcome,
}

/// Options for the guard-band experiment.
#[derive(Debug, Clone)]
pub struct GuardBandOptions {
    /// Benchmarks to run.
    pub specs: Vec<BenchmarkSpec>,
    /// Selection tolerance ε (paper: 5 % for the Table-1 regime).
    pub epsilon: f64,
    /// Pipeline configuration.
    pub pipeline: PipelineConfig,
    /// Monte-Carlo configuration.
    pub mc: McConfig,
}

impl Default for GuardBandOptions {
    fn default() -> Self {
        GuardBandOptions {
            specs: Suite::small(),
            epsilon: 0.05,
            pipeline: PipelineConfig::default(),
            mc: McConfig {
                n_samples: 2_000,
                ..McConfig::default()
            },
        }
    }
}

/// Runs the guard-band experiment for one benchmark.
///
/// # Errors
///
/// Returns [`ExperimentError`] when any stage fails.
pub fn run_one(
    spec: &BenchmarkSpec,
    opts: &GuardBandOptions,
) -> Result<GuardBandRow, ExperimentError> {
    let pb = prepare(spec, &opts.pipeline).map_err(ExperimentError::new)?;
    let dm = &pb.delay_model;
    let approx = approx_select(
        dm.a(),
        dm.mu_paths(),
        &ApproxConfig::new(opts.epsilon, pb.t_cons),
    )
    .map_err(ExperimentError::new)?;

    // Per-path analytic bands.
    let bands: Vec<f64> = approx
        .predictor
        .wc_errors()
        .iter()
        .map(|wc| (wc / pb.t_cons).min(0.999_999))
        .collect();
    let avg_band = if bands.is_empty() {
        0.0
    } else {
        bands.iter().sum::<f64>() / bands.len() as f64
    };
    let max_band = bands.iter().fold(0.0_f64, |m, &b| m.max(b));

    // Monte-Carlo verdict validation.
    let mut outcome = GuardBandOutcome::default();
    let mut sampler = VariationSampler::new(dm.variable_count(), opts.mc.seed);
    for _ in 0..opts.mc.n_samples {
        let x = sampler.draw();
        let d_all = dm.path_delays(&x).map_err(ExperimentError::new)?;
        let measured: Vec<f64> = approx.selected.iter().map(|&i| d_all[i]).collect();
        let pred = approx
            .predictor
            .predict(&measured)
            .map_err(ExperimentError::new)?;
        for (k, &path) in approx.remaining.iter().enumerate() {
            outcome.record(pred[k], d_all[path], bands[k], pb.t_cons);
        }
    }
    pathrep_obs::ledger::record("eval", "guardband", |f| {
        f.num("epsilon", opts.epsilon)
            .num("t_cons", pb.t_cons)
            .num("avg_band", avg_band)
            .num("max_band", max_band)
            // The guard-band in delay units: φ = ε_i·T_cons (paper §6.3).
            .num("avg_phi", avg_band * pb.t_cons)
            .num("max_phi", max_band * pb.t_cons)
            .int("confident_correct", outcome.confident_correct as u64)
            .int("confident_wrong", outcome.confident_wrong as u64)
            .int("uncertain", outcome.uncertain as u64)
            .num("decisiveness", outcome.decisiveness());
    });
    Ok(GuardBandRow {
        name: spec.name.to_string(),
        epsilon: opts.epsilon,
        avg_band,
        max_band,
        outcome,
    })
}

/// Runs the guard-band experiment over all configured benchmarks.
///
/// # Errors
///
/// Returns the first [`ExperimentError`] encountered.
pub fn run(opts: &GuardBandOptions) -> Result<Vec<GuardBandRow>, ExperimentError> {
    opts.specs.iter().map(|s| run_one(s, opts)).collect()
}

/// Renders the guard-band summary.
pub fn render(rows: &[GuardBandRow]) -> String {
    let mut t = Table::new([
        "BENCH",
        "eps%",
        "avg band%",
        "max band%",
        "confident ok",
        "confident wrong",
        "uncertain",
        "decisive%",
    ]);
    for r in rows {
        t.push_row([
            r.name.clone(),
            pct(r.epsilon),
            pct(r.avg_band),
            pct(r.max_band),
            r.outcome.confident_correct.to_string(),
            r.outcome.confident_wrong.to_string(),
            r.outcome.uncertain.to_string(),
            pct(r.outcome.decisiveness()),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> GuardBandOptions {
        GuardBandOptions {
            specs: vec![BenchmarkSpec {
                name: "tiny",
                n_gates: 220,
                n_inputs: 18,
                n_outputs: 14,
                model_levels: 3,
                seed: 81,
                            depth: None,
}],
            epsilon: 0.05,
            pipeline: PipelineConfig::default(),
            mc: McConfig {
                n_samples: 400,
                seed: 3,
                threads: 1,
            },
        }
    }

    #[test]
    fn confident_verdicts_almost_never_wrong() {
        let rows = run(&tiny_opts()).unwrap();
        let r = &rows[0];
        // The κ = 3 band is exceeded by a Gaussian error ~0.27 % of the
        // time, and a *wrong verdict* additionally needs the prediction to
        // sit on the wrong side of the constraint — so the wrong-verdict
        // rate must be far below the raw tail probability.
        let rate = r.outcome.confident_wrong as f64 / r.outcome.total().max(1) as f64;
        assert!(
            rate < 2.7e-3,
            "wrong-verdict rate {rate:.2e} too high: {:?}",
            r.outcome
        );
        assert!(r.outcome.total() > 0);
    }

    #[test]
    fn bands_bounded_by_selection_tolerance() {
        let rows = run(&tiny_opts()).unwrap();
        let r = &rows[0];
        assert!(r.max_band <= r.epsilon + 1e-9, "band {} > ε", r.max_band);
        assert!(r.avg_band <= r.max_band);
    }

    #[test]
    fn render_shape() {
        let rows = run(&tiny_opts()).unwrap();
        let s = render(&rows);
        assert!(s.contains("decisive%"));
        assert!(s.contains("tiny"));
    }
}
