//! Experiment runners, one module per table/figure of the paper.

pub mod figure2;
pub mod guardband;
pub mod table1;
pub mod table2;

use std::error::Error;
use std::fmt;

/// Error from an experiment run.
#[derive(Debug)]
pub struct ExperimentError {
    message: String,
}

impl ExperimentError {
    /// Wraps any displayable cause.
    pub fn new<E: fmt::Display>(e: E) -> Self {
        ExperimentError {
            message: e.to_string(),
        }
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "experiment failed: {}", self.message)
    }
}

impl Error for ExperimentError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_causes() {
        let e = ExperimentError::new("boom");
        assert!(e.to_string().contains("boom"));
    }
}
