//! CSV export of experiment results (plain `std::fmt`, no extra deps), so
//! the regenerated tables can be diffed, plotted, or archived alongside the
//! paper's numbers.

use crate::experiments::figure2::Figure2;
use crate::experiments::guardband::GuardBandRow;
use crate::experiments::table1::Table1Row;
use crate::experiments::table2::Table2Row;

/// Escapes one CSV cell (quotes when it contains a comma or quote).
fn cell(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn line<I: IntoIterator<Item = String>>(fields: I) -> String {
    fields
        .into_iter()
        .map(|f| cell(&f))
        .collect::<Vec<_>>()
        .join(",")
}

/// Table-1 rows as CSV (header included).
pub fn table1_csv(rows: &[Table1Row]) -> String {
    let mut out = String::from("bench,gates,regions,n_tar,r_exact,r_approx,e1,e2\n");
    for r in rows {
        out.push_str(&line([
            r.name.clone(),
            r.gates.to_string(),
            r.regions.to_string(),
            r.n_tar.to_string(),
            r.r_exact.to_string(),
            r.r_approx.to_string(),
            format!("{:.6}", r.e1),
            format!("{:.6}", r.e2),
        ]));
        out.push('\n');
    }
    out
}

/// Table-2 rows as CSV (header included).
pub fn table2_csv(rows: &[Table2Row]) -> String {
    let mut out = String::from(
        "bench,gates,regions,covered_gates,covered_regions,n_tar,\
         approx_paths,approx_e1,approx_e2,hybrid_paths,hybrid_segments,\
         hybrid_total,hybrid_e1,hybrid_e2\n",
    );
    for r in rows {
        out.push_str(&line([
            r.name.clone(),
            r.gates.to_string(),
            r.regions.to_string(),
            r.covered_gates.to_string(),
            r.covered_regions.to_string(),
            r.n_tar.to_string(),
            r.approx_paths.to_string(),
            format!("{:.6}", r.approx_e1),
            format!("{:.6}", r.approx_e2),
            r.hybrid_paths.to_string(),
            r.hybrid_segments.to_string(),
            r.hybrid_total().to_string(),
            format!("{:.6}", r.hybrid_e1),
            format!("{:.6}", r.hybrid_e2),
        ]));
        out.push('\n');
    }
    out
}

/// Figure-2 series as CSV: `index,base,scaled` (header included).
pub fn figure2_csv(fig: &Figure2) -> String {
    let mut out = String::from("index,base,scaled\n");
    let n = fig.base.values.len().max(fig.scaled.values.len());
    for i in 0..n {
        out.push_str(&line([
            (i + 1).to_string(),
            fig.base
                .values
                .get(i)
                .map(|v| format!("{v:.8e}"))
                .unwrap_or_default(),
            fig.scaled
                .values
                .get(i)
                .map(|v| format!("{v:.8e}"))
                .unwrap_or_default(),
        ]));
        out.push('\n');
    }
    out
}

/// Guard-band rows as CSV (header included).
pub fn guardband_csv(rows: &[GuardBandRow]) -> String {
    let mut out = String::from(
        "bench,epsilon,avg_band,max_band,confident_correct,confident_wrong,uncertain\n",
    );
    for r in rows {
        out.push_str(&line([
            r.name.clone(),
            format!("{:.6}", r.epsilon),
            format!("{:.6}", r.avg_band),
            format!("{:.6}", r.max_band),
            r.outcome.confident_correct.to_string(),
            r.outcome.confident_wrong.to_string(),
            r.outcome.uncertain.to_string(),
        ]));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_rules() {
        assert_eq!(cell("plain"), "plain");
        assert_eq!(cell("a,b"), "\"a,b\"");
        assert_eq!(cell("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn table1_csv_shape() {
        let rows = vec![Table1Row {
            name: "s1".into(),
            gates: 10,
            regions: 21,
            n_tar: 5,
            r_exact: 3,
            r_approx: 2,
            e1: 0.0301,
            e2: 0.005,
        }];
        let csv = table1_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("bench,"));
        assert!(lines[1].starts_with("s1,10,21,5,3,2,0.030100,"));
        // Column counts match.
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count()
        );
    }

    #[test]
    fn guardband_csv_shape() {
        use pathrep_core::guardband::GuardBandOutcome;
        let mut outcome = GuardBandOutcome::default();
        outcome.record(120.0, 125.0, 0.05, 100.0);
        let rows = vec![GuardBandRow {
            name: "x".into(),
            epsilon: 0.05,
            avg_band: 0.02,
            max_band: 0.04,
            outcome,
        }];
        let csv = guardband_csv(&rows);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("x,0.050000,0.020000,0.040000,1,0,0"));
    }
}
