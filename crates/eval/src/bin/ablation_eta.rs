//! Ablation: the effective-rank energy threshold η (Section 4.2).
//!
//! Sweeps η and reports the effective rank of `A` next to the Algorithm-1
//! selection size at the matching tolerance — showing how well the
//! effective rank predicts the number of representative paths.

use pathrep_core::approx::{approx_select_with, ApproxConfig};
use pathrep_core::ModelFactors;
use pathrep_eval::pipeline::{prepare, PipelineConfig};
use pathrep_eval::report::Table;
use pathrep_eval::suite::Suite;

fn main() {
    let spec = Suite::by_name("s1423").expect("s1423 is in the suite");
    let pipeline = PipelineConfig {
        max_paths: 800,
        ..PipelineConfig::default()
    };
    let pb = match prepare(&spec, &pipeline) {
        Ok(pb) => pb,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let dm = &pb.delay_model;
    let factors = match ModelFactors::compute(dm.a()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let mut table = Table::new(["eta%", "effective rank", "eps%", "|Pr| approx", "achieved eps_r%"]);
    for &(eta, epsilon) in &[
        (0.01, 0.01),
        (0.02, 0.02),
        (0.05, 0.05),
        (0.08, 0.08),
        (0.10, 0.10),
    ] {
        let er = factors
            .svd()
            .effective_rank(eta)
            .expect("eta in range");
        let mut cfg = ApproxConfig::new(epsilon, pb.t_cons);
        cfg.eta = eta;
        match approx_select_with(dm.a(), dm.mu_paths(), &cfg, &factors) {
            Ok(sel) => table.push_row([
                format!("{:.0}", 100.0 * eta),
                er.to_string(),
                format!("{:.0}", 100.0 * epsilon),
                sel.selected.len().to_string(),
                format!("{:.2}", 100.0 * sel.epsilon_r),
            ]),
            Err(e) => {
                eprintln!("eta {eta}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "Ablation: effective-rank threshold eta vs selection size \
         ({}: |Ptar| = {}, rank(A) = {})",
        spec.name,
        pb.path_count(),
        factors.svd().rank(1e-9)
    );
    println!("{}", table.render());
    pathrep_obs::report("ablation_eta");
}
