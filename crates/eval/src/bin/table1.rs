//! Regenerates the paper's Table 1. `--fast` runs a reduced configuration.

use pathrep_eval::experiments::table1::{render, run, Table1Options};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let opts = if fast {
        Table1Options::fast()
    } else {
        Table1Options::default()
    };
    println!("Table 1: Results for Approximate Path Selection (eps = 5%)");
    let csv = std::env::args().any(|a| a == "--csv");
    match run(&opts) {
        Ok(rows) => {
            if csv {
                print!("{}", pathrep_eval::csv::table1_csv(&rows));
            } else {
                println!("{}", render(&rows));
            }
            pathrep_obs::report("table1");
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
