//! Ablation: how the random-variation extent moves the path-vs-segment
//! crossover (extends the paper's Figure-2(b) argument to Table-2 form).
//!
//! For a fixed benchmark, sweep the per-gate random-σ scale and report the
//! approximate-selection size, the hybrid measurement count, and both
//! errors — the crossover where segments start winning is the paper's
//! Section-5 motivation made quantitative.

use pathrep_eval::experiments::table2::{run_one, Table2Options};
use pathrep_eval::metrics::McConfig;
use pathrep_eval::pipeline::PipelineConfig;
use pathrep_eval::report::{pct, Table};
use pathrep_eval::suite::Suite;

fn main() {
    let scales = [1.0, 2.0, 3.0, 4.0, 6.0, 8.0];
    let spec = Suite::by_name("s1423").expect("s1423 is in the suite");
    let mut table = Table::new([
        "rand scale",
        "|Ptar|",
        "|Pr| approx",
        "apx e1%",
        "hybrid |Pr|",
        "hybrid |Sr|",
        "hybrid total",
        "hyb e1%",
    ]);
    for &scale in &scales {
        let opts = Table2Options {
            specs: vec![spec.clone()],
            eps_prime_candidates: vec![0.02, 0.04, 0.06],
            pipeline: PipelineConfig {
                t_cons_factor: 0.98,
                max_paths: 600,
                random_scale: scale,
                ..PipelineConfig::default()
            },
            mc: McConfig {
                n_samples: 1_000,
                ..McConfig::default()
            },
            ..Table2Options::default()
        };
        match run_one(&spec, &opts) {
            Ok(r) => table.push_row([
                format!("{scale:.1}"),
                r.n_tar.to_string(),
                r.approx_paths.to_string(),
                pct(r.approx_e1),
                r.hybrid_paths.to_string(),
                r.hybrid_segments.to_string(),
                r.hybrid_total().to_string(),
                pct(r.hybrid_e1),
            ]),
            Err(e) => {
                eprintln!("scale {scale}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("Ablation: random-variation extent vs selection cost (s1423-class)");
    println!("{}", table.render());
    pathrep_obs::report("ablation_random_scale");
}
