//! Regenerates the Section-6.3 guard-band analysis.

use pathrep_eval::experiments::guardband::{render, run, GuardBandOptions};

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    if !csv {
        println!("Guard-band analysis (Section 6.3)");
    }
    match run(&GuardBandOptions::default()) {
        Ok(rows) => {
            if csv {
                print!("{}", pathrep_eval::csv::guardband_csv(&rows));
            } else {
                println!("{}", render(&rows));
            }
            pathrep_obs::report("guardband");
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
