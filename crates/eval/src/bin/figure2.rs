//! Regenerates the paper's Figure 2 (normalized singular values of A).

use pathrep_eval::experiments::figure2::{render, run, Figure2Options};

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    match run(&Figure2Options::default()) {
        Ok(fig) => {
            if csv {
                print!("{}", pathrep_eval::csv::figure2_csv(&fig));
            } else {
                println!("{}", render(&fig));
            }
            pathrep_obs::report("figure2");
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
