//! Regenerates the paper's Table 2. `--fast` runs a reduced configuration.

use pathrep_eval::experiments::table2::{render, run, Table2Options};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let opts = if fast {
        Table2Options::fast()
    } else {
        Table2Options::default()
    };
    println!("Table 2: Results for Evaluating Hybrid Path/Segment Selection (eps = 8%)");
    let csv = std::env::args().any(|a| a == "--csv");
    match run(&opts) {
        Ok(rows) => {
            if csv {
                print!("{}", pathrep_eval::csv::table2_csv(&rows));
            } else {
                println!("{}", render(&rows));
            }
            pathrep_obs::report("table2");
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
