//! Small vector kernels used across the crate.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ; in release builds the
/// shorter length wins (standard `zip` semantics), which is never intended —
/// callers must pass equal lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm of a slice, computed with scaling to avoid overflow.
pub fn norm2(a: &[f64]) -> f64 {
    let scale = a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
    if scale == 0.0 {
        return 0.0;
    }
    let ssq: f64 = a.iter().map(|&x| (x / scale) * (x / scale)).sum();
    scale * ssq.sqrt()
}

/// Maximum absolute entry.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Sum of absolute entries.
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x - y).collect()
}

/// Element-wise sum `a + b` as a new vector.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x + y).collect()
}

/// Scales a slice in place.
pub fn scale(a: &mut [f64], s: f64) {
    for x in a.iter_mut() {
        *x *= s;
    }
}

/// Total order on `f64` that treats every NaN as **smaller than** every
/// real number (and NaNs as equal to each other).
///
/// `partial_cmp(..).unwrap_or(Equal)` silently treats NaN as equal to its
/// neighbour, which poisons `max_by`/`sort_by`: a single NaN can win a
/// pivot selection or scramble a descending sort. With this comparator a
/// NaN deterministically *loses* every max-selection and sorts *last* in
/// descending order, and for all-finite data the order is identical to
/// `partial_cmp`.
#[inline]
pub fn cmp_nan_smallest(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (false, false) => a.partial_cmp(&b).expect("both operands are non-NaN"),
    }
}

/// Stable two-norm of `(a, b)` — `hypot` without the libm call overhead
/// differences across platforms.
#[inline]
pub fn pythag(a: f64, b: f64) -> f64 {
    let (a, b) = (a.abs(), b.abs());
    if a > b {
        let r = b / a;
        a * (1.0 + r * r).sqrt()
    } else if b > 0.0 {
        let r = a / b;
        b * (1.0 + r * r).sqrt()
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norm2_overflow_safe() {
        let big = 1e200;
        let n = norm2(&[big, big]);
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-14);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn norms_agree_on_simple_input() {
        let v = [3.0, -4.0];
        assert!((norm2(&v) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&v), 4.0);
        assert_eq!(norm1(&v), 7.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn pythag_matches_hypot() {
        for (a, b) in [(3.0, 4.0), (0.0, 0.0), (-5.0, 12.0), (1e-300, 1e-300)] {
            assert!((pythag(a, b) - f64::hypot(a, b)).abs() <= 1e-12 * f64::hypot(a, b).max(1.0));
        }
    }

    #[test]
    fn cmp_nan_smallest_totally_orders() {
        use std::cmp::Ordering::*;
        assert_eq!(cmp_nan_smallest(f64::NAN, f64::NAN), Equal);
        assert_eq!(cmp_nan_smallest(f64::NAN, -f64::INFINITY), Less);
        assert_eq!(cmp_nan_smallest(1.0, f64::NAN), Greater);
        assert_eq!(cmp_nan_smallest(1.0, 2.0), Less);
        assert_eq!(cmp_nan_smallest(2.0, 2.0), Equal);
        // A NaN can never win a max-selection.
        let max = [1.0, f64::NAN, 3.0, 2.0]
            .into_iter()
            .max_by(|a, b| cmp_nan_smallest(*a, *b))
            .unwrap();
        assert_eq!(max, 3.0);
    }

    #[test]
    fn add_sub_are_elementwise() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
    }
}
