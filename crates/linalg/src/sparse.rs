//! Compressed-sparse-row matrices with a deterministic accumulation
//! contract.
//!
//! The paper's measurement matrix factors as `A = G·Σ` where `G` (paths ×
//! segments) and `Σ` (segments × variation variables) are both naturally
//! block-sparse: a path touches few segments and a segment's gates sit in
//! few variation regions. [`SparseMatrix`] keeps that structure end-to-end
//! so the 100k-gate pipeline never materialises an `n×n_vars` dense array.
//!
//! # Determinism contract
//!
//! Every operation here is bit-identical at any `PATHREP_THREADS` setting:
//!
//! * Parallelism only ever splits **output rows** into contiguous chunks
//!   (`pathrep_par::for_each_unit_chunk_mut` / `map_indexed`), so each
//!   output element is written by exactly one worker.
//! * Each output element accumulates its terms in a fixed order — CSR
//!   column order for `matvec`, `k`-ascending for the products — which is
//!   the same order the dense kernels in [`crate::matrix`] use (their
//!   `i-k-j` loops skip explicit zeros), so sparse results match the dense
//!   ones bit-for-bit on identical inputs.
//! * Model-based work counters ([`pathrep_obs::work`]) are computed from
//!   `nnz` and the shapes alone and recorded once, up front — identical
//!   across thread counts by construction.
//!
//! # Canonical-zero policy
//!
//! Stored values are dropped iff they compare equal to zero (`v == 0.0`,
//! which drops both `+0.0` and `-0.0` — IEEE 754 compares them equal).
//! NaN never compares equal to zero and is therefore always **kept**: a
//! poisoned accumulation stays visible in the structure instead of
//! silently vanishing. This is the same policy as `pathrep-ssta`'s
//! `SparseVec`, so nnz-dependent work counters agree between the two
//! layers for algebraically equal inputs.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// The canonical-zero predicate: `true` for `+0.0` and `-0.0`, `false`
/// for everything else including NaN (see the module docs).
#[inline]
pub fn is_canonical_zero(v: f64) -> bool {
    v == 0.0
}

/// A sparse matrix in compressed-sparse-row (CSR) form. Column indices
/// within each row are strictly ascending; stored values follow the
/// module-level canonical-zero policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes row `r`'s slice of
    /// `col_idx`/`vals`; length `rows + 1`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate `(row, col)` entries are summed **in input order** (the
    /// sort is stable), so the accumulation order is part of the API: two
    /// calls with the same triplet sequence produce bit-identical values.
    /// Merged sums that are canonical zeros are dropped.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidArgument`] when a triplet indexes outside
    /// `rows × cols`.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        if triplets.iter().any(|&(r, c, _)| r >= rows || c >= cols) {
            return Err(LinalgError::InvalidArgument {
                what: "sparse triplet index out of bounds",
            });
        }
        let mut sorted = triplets.to_vec();
        // Stable by (row, col): duplicates keep their input order so the
        // merge below sums them in input order.
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut vals = Vec::with_capacity(sorted.len());
        let mut i = 0;
        while i < sorted.len() {
            let (r, c, mut v) = sorted[i];
            i += 1;
            while i < sorted.len() && sorted[i].0 == r && sorted[i].1 == c {
                v += sorted[i].2;
                i += 1;
            }
            if !is_canonical_zero(v) {
                row_ptr[r + 1] += 1;
                col_idx.push(c);
                vals.push(v);
            }
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        })
    }

    /// Compresses a dense matrix, dropping canonical zeros.
    pub fn from_dense(a: &Matrix) -> Self {
        let (rows, cols) = a.shape();
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for r in 0..rows {
            for (c, &v) in a.row(r).iter().enumerate() {
                if !is_canonical_zero(v) {
                    col_idx.push(c);
                    vals.push(v);
                }
            }
            row_ptr[r + 1] = col_idx.len();
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Expands to a dense matrix (absent entries become `+0.0`).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let row = out.row_mut(r);
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                row[self.col_idx[k]] = self.vals[k];
            }
        }
        out
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Fraction of entries that are stored; 0 for an empty shape.
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Row `r`'s `(column indices, values)` slices, columns ascending.
    ///
    /// # Panics
    ///
    /// Panics if `r >= nrows()`.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.vals[span])
    }

    /// The stored value at `(r, c)`, or `0.0` when absent.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&c) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Frobenius norm; sequential sum in storage order (deterministic).
    pub fn norm_fro(&self) -> f64 {
        self.vals.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Diagonal of `A·Aᵀ` — per-row squared norms, each accumulated in
    /// CSR column order. This is the Gram diagonal the sketched predictor
    /// needs without ever forming the `n×n` Gram matrix.
    pub fn gram_diag(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| {
                let (_, vals) = self.row(r);
                vals.iter().map(|v| v * v).sum()
            })
            .collect()
    }

    /// Transpose (CSC view materialised as CSR of `Aᵀ`). The counting
    /// pass scans rows in order, so within each transposed row the
    /// entries appear in ascending (new) column order — deterministic and
    /// already canonical.
    pub fn transpose(&self) -> Self {
        let nnz = self.nnz();
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for c in 0..self.cols {
            row_ptr[c + 1] += row_ptr[c];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0usize; nnz];
        let mut vals = vec![0.0f64; nnz];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let dst = cursor[c];
                cursor[c] += 1;
                col_idx[dst] = r;
                vals[dst] = self.vals[k];
            }
        }
        Self {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Extracts rows `idx` as a dense `idx.len() × cols` matrix (the
    /// reduced blocks Algorithm 2 hands to the predictor are small and
    /// dense by nature).
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidArgument`] on an out-of-range index.
    pub fn select_rows_dense(&self, idx: &[usize]) -> Result<Matrix> {
        if idx.iter().any(|&r| r >= self.rows) {
            return Err(LinalgError::InvalidArgument {
                what: "row selection index out of bounds",
            });
        }
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            let row = out.row_mut(i);
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                row[self.col_idx[k]] = self.vals[k];
            }
        }
        Ok(out)
    }

    /// Sparse matrix–vector product `y = A·x`.
    ///
    /// Each `y[r]` accumulates in CSR column order; rows are chunked
    /// across workers, so the result is bit-identical at any thread
    /// count. Work model: `2·nnz` flops, `8·(3·nnz + rows)` bytes
    /// (values + indices + gathered `x` + streamed `y`).
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `x.len() != ncols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "spmv",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), 1),
            });
        }
        let _span = pathrep_obs::span!("spmv");
        let nnz = self.nnz() as u64;
        let rows = self.rows as u64;
        pathrep_obs::work::record("spmv", 2 * nnz, 8 * (3 * nnz + rows), nnz + rows);
        let mut y = vec![0.0f64; self.rows];
        if self.rows == 0 {
            return Ok(y);
        }
        let avg_nnz = (self.nnz() / self.rows.max(1)).max(1);
        // ~2^20 flops per chunk: sparse rows are memory-bound with an
        // indirect gather per entry, so a finer grain spends more time
        // parking/unparking workers than computing (the 100k-gate
        // workloads showed t4 slower than t1 at 2^18).
        let min_rows = (1usize << 20) / (2 * avg_nnz) + 1;
        pathrep_par::for_each_unit_chunk_mut(&mut y, 1, min_rows, |first, chunk| {
            for (i, yi) in chunk.iter_mut().enumerate() {
                let r = first + i;
                let mut acc = 0.0;
                for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                    acc += self.vals[k] * x[self.col_idx[k]];
                }
                *yi = acc;
            }
        });
        Ok(y)
    }

    /// Sparse × dense product `C = A·B` (`m×k` CSR times `k×n` dense,
    /// dense result).
    ///
    /// Output rows are chunked across workers; each `C[r, j]` accumulates
    /// over `A`'s row-`r` entries in CSR (k-ascending) order — the same
    /// order as the dense `i-k-j` matmul with its explicit-zero skip, so
    /// the product is bit-identical to [`Matrix::matmul`] on the dense
    /// expansion. Work model: `2·nnz·n` flops.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] on an inner-dimension mismatch;
    /// [`LinalgError::Empty`] when either operand has a zero dimension.
    pub fn matmul_dense(&self, b: &Matrix) -> Result<Matrix> {
        let (bk, bn) = b.shape();
        if bk != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "spmm",
                lhs: (self.rows, self.cols),
                rhs: (bk, bn),
            });
        }
        if self.rows == 0 || self.cols == 0 || bn == 0 {
            return Err(LinalgError::Empty);
        }
        let _span = pathrep_obs::span!("spmm");
        let nnz = self.nnz() as u64;
        let (bn_u, rows_u) = (bn as u64, self.rows as u64);
        pathrep_obs::work::record(
            "spmm",
            2 * nnz * bn_u,
            8 * (2 * nnz + nnz * bn_u + rows_u * bn_u),
            nnz + rows_u * bn_u,
        );
        let mut c = Matrix::zeros(self.rows, bn);
        let avg_nnz = (self.nnz() / self.rows.max(1)).max(1);
        let row_flops = 2 * avg_nnz * bn;
        // ~2^22 flops per chunk (see `matvec` on why sparse kernels need a
        // coarser grain than their dense counterparts).
        let min_rows = (1usize << 22) / row_flops.max(1) + 1;
        pathrep_par::for_each_unit_chunk_mut(c.as_mut_slice(), bn, min_rows, |first, chunk| {
            for (local, crow) in chunk.chunks_mut(bn).enumerate() {
                let r = first + local;
                for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                    let v = self.vals[k];
                    let brow = b.row(self.col_idx[k]);
                    for (cj, bj) in crow.iter_mut().zip(brow) {
                        *cj += v * bj;
                    }
                }
            }
        });
        Ok(c)
    }

    /// Dense × sparse product `C = L·A` (`p×m` dense times `m×k` CSR,
    /// dense result) — the `QᵀA` step of the sketched SVD.
    ///
    /// Output rows are chunked across workers; each `C[i, c]`
    /// accumulates over `j` ascending (skipping `L[i, j] == 0.0` exactly
    /// like the dense matmul skips explicit zeros), so the result is
    /// bit-identical to [`Matrix::matmul`] on the dense expansion. Work
    /// model: `2·p·nnz` flops.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] on an inner-dimension mismatch;
    /// [`LinalgError::Empty`] when either operand has a zero dimension.
    pub fn premul_dense(&self, l: &Matrix) -> Result<Matrix> {
        let (p, lm) = l.shape();
        if lm != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "spmm",
                lhs: (p, lm),
                rhs: (self.rows, self.cols),
            });
        }
        if p == 0 || self.rows == 0 || self.cols == 0 {
            return Err(LinalgError::Empty);
        }
        let _span = pathrep_obs::span!("spmm");
        let nnz = self.nnz() as u64;
        let (p_u, cols_u) = (p as u64, self.cols as u64);
        pathrep_obs::work::record(
            "spmm",
            2 * p_u * nnz,
            8 * (2 * nnz + p_u * nnz + p_u * cols_u),
            nnz + p_u * cols_u,
        );
        let mut c = Matrix::zeros(p, self.cols);
        let row_flops = 2 * self.nnz();
        // ~2^22 flops per chunk (see `matvec` on why sparse kernels need a
        // coarser grain than their dense counterparts).
        let min_rows = (1usize << 22) / row_flops.max(1) + 1;
        pathrep_par::for_each_unit_chunk_mut(c.as_mut_slice(), self.cols, min_rows, |first, chunk| {
            for (local, crow) in chunk.chunks_mut(self.cols).enumerate() {
                let i = first + local;
                let lrow = l.row(i);
                for (r, &lv) in lrow.iter().enumerate() {
                    if lv == 0.0 {
                        continue;
                    }
                    for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                        crow[self.col_idx[k]] += lv * self.vals[k];
                    }
                }
            }
        });
        Ok(c)
    }

    /// Sparse × sparse product `C = A·B`, both CSR — the `A = G·Σ`
    /// assembly step.
    ///
    /// Each output row gathers its partial products in `k`-ascending
    /// order, stable-sorts by column (duplicates keep the `k` order), and
    /// merges — so every `C[i, j]` accumulates in exactly the dense
    /// `i-k-j` order and the product matches [`Matrix::matmul`] on the
    /// dense expansions bit-for-bit (modulo entries that merge to a
    /// canonical zero, which are dropped here and `+0.0` there). Rows are
    /// computed by `pathrep_par::map_indexed`, which returns them in row
    /// order regardless of thread count.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] on an inner-dimension mismatch.
    pub fn matmul_sparse(&self, b: &SparseMatrix) -> Result<SparseMatrix> {
        if self.cols != b.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "spmm",
                lhs: (self.rows, self.cols),
                rhs: (b.rows, b.cols),
            });
        }
        let _span = pathrep_obs::span!("spmm");
        // Deterministic work model: one multiply-add per partial product.
        let products: u64 = self
            .col_idx
            .iter()
            .map(|&c| (b.row_ptr[c + 1] - b.row_ptr[c]) as u64)
            .sum();
        pathrep_obs::work::record(
            "spmm",
            2 * products,
            8 * (2 * (self.nnz() as u64 + b.nnz() as u64) + 2 * products),
            products,
        );
        let avg_products = (products as usize / self.rows.max(1)).max(1);
        // ~2^20 flops per chunk (see `matvec` on why sparse kernels need a
        // coarser grain than their dense counterparts).
        let min_rows = (1usize << 20) / (2 * avg_products) + 1;
        let built: Vec<(Vec<usize>, Vec<f64>)> =
            pathrep_par::map_indexed(self.rows, min_rows, |r| {
                let mut pairs: Vec<(usize, f64)> = Vec::new();
                for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                    let v = self.vals[k];
                    let mid = self.col_idx[k];
                    for kb in b.row_ptr[mid]..b.row_ptr[mid + 1] {
                        pairs.push((b.col_idx[kb], v * b.vals[kb]));
                    }
                }
                // Stable: duplicate columns keep k-ascending order.
                pairs.sort_by_key(|&(c, _)| c);
                let mut cols_out = Vec::new();
                let mut vals_out = Vec::new();
                let mut it = pairs.into_iter();
                if let Some((mut cc, mut cv)) = it.next() {
                    for (c2, v2) in it {
                        if c2 == cc {
                            cv += v2;
                        } else {
                            if !is_canonical_zero(cv) {
                                cols_out.push(cc);
                                vals_out.push(cv);
                            }
                            cc = c2;
                            cv = v2;
                        }
                    }
                    if !is_canonical_zero(cv) {
                        cols_out.push(cc);
                        vals_out.push(cv);
                    }
                }
                (cols_out, vals_out)
            });
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for (rc, rv) in built {
            col_idx.extend_from_slice(&rc);
            vals.extend_from_slice(&rv);
            row_ptr.push(col_idx.len());
        }
        Ok(SparseMatrix {
            rows: self.rows,
            cols: b.cols,
            row_ptr,
            col_idx,
            vals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).expect("test matrix")
    }

    #[test]
    fn from_triplets_merges_duplicates_in_input_order() {
        let a = SparseMatrix::from_triplets(2, 3, &[(1, 2, 0.5), (0, 0, 1.0), (1, 2, 0.25)])
            .expect("valid triplets");
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 2), 0.75);
        let (cols, _) = a.row(1);
        assert_eq!(cols, &[2]);
    }

    #[test]
    fn canonical_zero_policy_drops_both_signed_zeros_and_cancellations() {
        let a = SparseMatrix::from_triplets(
            1,
            4,
            &[(0, 0, 0.0), (0, 1, -0.0), (0, 2, 2.0), (0, 2, -2.0), (0, 3, 1.0)],
        )
        .expect("valid triplets");
        // +0.0, -0.0 and the exact cancellation all canonicalise away.
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 3), 1.0);
    }

    #[test]
    fn canonical_zero_policy_keeps_nan_visible() {
        let a = SparseMatrix::from_triplets(1, 2, &[(0, 0, f64::NAN)]).expect("valid triplets");
        assert_eq!(a.nnz(), 1, "NaN must not be silently dropped");
        assert!(a.get(0, 0).is_nan());
    }

    #[test]
    fn out_of_bounds_triplet_is_rejected() {
        let err = SparseMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidArgument { .. }));
    }

    #[test]
    fn dense_round_trip_preserves_values() {
        let d = dense(&[&[1.0, 0.0, 3.0], &[0.0, 0.0, 0.0], &[-2.0, 4.0, 0.0]]);
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 4);
        assert!(s.to_dense().approx_eq(&d, 0.0));
    }

    #[test]
    fn transpose_round_trips_and_sorts_columns() {
        let d = dense(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]]);
        let s = SparseMatrix::from_dense(&d);
        let t = s.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert!(t.to_dense().approx_eq(&d.transpose(), 0.0));
        assert!(t.transpose().to_dense().approx_eq(&d, 0.0));
    }

    #[test]
    fn matvec_matches_dense_bitwise() {
        let d = dense(&[&[1.5, 0.0, -2.0], &[0.0, 0.25, 4.0], &[3.0, 0.0, 0.0]]);
        let s = SparseMatrix::from_dense(&d);
        let x = [0.5, -1.0, 2.25];
        let ys = s.matvec(&x).expect("spmv");
        let yd = d.matvec(&x).expect("dense matvec");
        for (a, b) in ys.iter().zip(&yd) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matvec_rejects_length_mismatch() {
        let s = SparseMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).expect("valid");
        assert!(matches!(
            s.matvec(&[1.0, 2.0]),
            Err(LinalgError::ShapeMismatch { op: "spmv", .. })
        ));
    }

    #[test]
    fn matmul_dense_matches_dense_bitwise() {
        let d = dense(&[&[1.0, 0.0, 2.0], &[0.0, -3.0, 0.5]]);
        let b = dense(&[&[0.5, 1.0], &[2.0, -1.0], &[0.25, 3.0]]);
        let s = SparseMatrix::from_dense(&d);
        let cs = s.matmul_dense(&b).expect("spmm");
        let cd = d.matmul(&b).expect("dense matmul");
        for (a, b) in cs.as_slice().iter().zip(cd.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn premul_dense_matches_dense_bitwise() {
        let d = dense(&[&[1.0, 0.0, 2.0], &[0.0, -3.0, 0.5], &[4.0, 0.0, 0.0]]);
        let l = dense(&[&[0.5, 0.0, 2.0], &[1.0, -1.0, 0.0]]);
        let s = SparseMatrix::from_dense(&d);
        let cs = s.premul_dense(&l).expect("premul");
        let cd = l.matmul(&d).expect("dense matmul");
        for (a, b) in cs.as_slice().iter().zip(cd.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matmul_sparse_matches_dense() {
        let g = dense(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        let sig = dense(&[&[0.5, 0.0, 0.0, 2.0], &[0.0, 1.5, 0.0, 0.0], &[0.25, 0.0, -1.0, 0.0]]);
        let a = SparseMatrix::from_dense(&g)
            .matmul_sparse(&SparseMatrix::from_dense(&sig))
            .expect("sparse product");
        let ad = g.matmul(&sig).expect("dense product");
        assert!(a.to_dense().approx_eq(&ad, 0.0));
    }

    #[test]
    fn matmul_sparse_shape_mismatch() {
        let a = SparseMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).expect("valid");
        let b = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).expect("valid");
        assert!(matches!(
            a.matmul_sparse(&b),
            Err(LinalgError::ShapeMismatch { op: "spmm", .. })
        ));
    }

    #[test]
    fn gram_diag_matches_row_norms() {
        let d = dense(&[&[3.0, 0.0, 4.0], &[0.0, 2.0, 0.0]]);
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.gram_diag(), vec![25.0, 4.0]);
        assert_eq!(s.norm_fro(), 29.0f64.sqrt());
    }

    #[test]
    fn select_rows_dense_extracts_and_validates() {
        let d = dense(&[&[1.0, 0.0], &[0.0, 2.0], &[3.0, 4.0]]);
        let s = SparseMatrix::from_dense(&d);
        let sel = s.select_rows_dense(&[2, 0]).expect("valid selection");
        assert!(sel.approx_eq(&dense(&[&[3.0, 4.0], &[1.0, 0.0]]), 0.0));
        assert!(matches!(
            s.select_rows_dense(&[3]),
            Err(LinalgError::InvalidArgument { .. })
        ));
    }
}
