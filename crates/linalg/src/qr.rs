//! Householder QR factorization, with and without column pivoting.
//!
//! QR with column pivoting (Businger–Golub) is the subset-selection engine of
//! the paper's Algorithm 2: applied to `U_rᵀ` (the leading right factor of
//! the SVD), the first `r` pivot columns identify the `r` most linearly
//! independent rows of `A`, i.e. the representative paths.

use crate::vecops;
use crate::{LinalgError, Matrix, Result};

/// Model-based work of one Householder application over a `width`-column
/// panel with reflector length `vlen` (implicit head plus tail):
/// `(flops, bytes, elements)`. Two passes (gather `s = β·Vᵀ·panel`, then
/// the rank-1 update) give `4·width·vlen` flops and two panel traversals.
fn householder_work(width: usize, vlen: usize) -> (u64, u64, u64) {
    let panel = (width * vlen) as u64;
    let vlen = vlen as u64;
    (4 * panel, 16 * panel + 8 * vlen, panel + vlen)
}

/// Householder QR factorization `A·P = Q·R` (P = identity when unpivoted).
///
/// # Example
///
/// ```
/// use pathrep_linalg::{Matrix, qr::Qr};
///
/// # fn main() -> Result<(), pathrep_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]])?;
/// let qr = Qr::compute(&a)?;
/// let back = qr.q_thin().matmul(&qr.r())?;
/// assert!(back.approx_eq(&a, 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factorization: R in the upper triangle, Householder vectors
    /// (with implicit unit first entry) below the diagonal.
    qr: Matrix,
    /// Householder scalars β_k such that H_k = I − β_k v vᵀ.
    betas: Vec<f64>,
    /// Column permutation: `perm[k]` is the original column index placed at
    /// position `k`.
    perm: Vec<usize>,
}

impl Qr {
    /// Factors `a` without pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty matrix.
    pub fn compute(a: &Matrix) -> Result<Self> {
        Self::factor(a, false)
    }

    /// Factors `a` with Businger–Golub column pivoting, producing a
    /// rank-revealing factorization: `|r_00| ≥ |r_11| ≥ …`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty matrix.
    pub fn compute_pivoted(a: &Matrix) -> Result<Self> {
        Self::factor(a, true)
    }

    fn factor(a: &Matrix, pivot: bool) -> Result<Self> {
        let _span = pathrep_obs::span!("qr_factor");
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        pathrep_obs::counter_add(
            if pivot {
                "linalg.qr.pivoted_calls"
            } else {
                "linalg.qr.calls"
            },
            1,
        );
        let mut qr = a.clone();
        let kmax = m.min(n);
        let mut betas = vec![0.0; kmax];
        let mut perm: Vec<usize> = (0..n).collect();

        // Work accounting: mirror the model counts streamed into
        // `obs::work` so the ledger record can stamp this factorization's
        // own totals (deterministic — never wall-time-derived).
        let mut wk_flops = (2 * m * n) as u64;
        let mut wk_bytes = (8 * m * n) as u64;
        pathrep_obs::work::record("qr_factor", wk_flops, wk_bytes, (m * n) as u64);

        // Squared column norms for pivot choice, down-dated as we go.
        // Accumulated in a row-major sweep (contiguous reads); each entry
        // still sums rows in ascending order, so the values are bit-for-bit
        // those of the classic per-column loop.
        let mut colnorm2 = vec![0.0; n];
        for i in 0..m {
            for (c, &x) in colnorm2.iter_mut().zip(qr.row(i)) {
                *c += x * x;
            }
        }
        let colnorm2_orig = colnorm2.clone();

        for k in 0..kmax {
            if pivot {
                // Pick the remaining column with the largest residual norm.
                let (pj, max) = Self::select_pivot(&colnorm2, k)?;
                // Guard against down-dating drift: recompute when the running
                // value has decayed far below the original.
                if max <= 1e-14 * colnorm2_orig[perm[pj]].max(1.0) {
                    pathrep_obs::counter_add("linalg.qr.norm_recomputes", 1);
                    let panel = ((m - k) * (n - k)) as u64;
                    pathrep_obs::work::record("qr_factor", 2 * panel, 8 * panel, panel);
                    wk_flops += 2 * panel;
                    wk_bytes += 8 * panel;
                    for c in colnorm2[k..].iter_mut() {
                        *c = 0.0;
                    }
                    for i in k..m {
                        let row = &qr.row(i)[k..];
                        for (c, &x) in colnorm2[k..].iter_mut().zip(row) {
                            *c += x * x;
                        }
                    }
                }
                let (pj, _) = Self::select_pivot(&colnorm2, k)?;
                if pj != k {
                    pathrep_obs::counter_add("linalg.qr.pivot_swaps", 1);
                    for i in 0..m {
                        let t = qr[(i, k)];
                        qr[(i, k)] = qr[(i, pj)];
                        qr[(i, pj)] = t;
                    }
                    colnorm2.swap(k, pj);
                    perm.swap(k, pj);
                }
            }

            // Build the Householder reflector for column k.
            let normx = {
                let col: Vec<f64> = (k..m).map(|i| qr[(i, k)]).collect();
                vecops::norm2(&col)
            };
            if normx == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -normx } else { normx };
            let v0 = qr[(k, k)] - alpha;
            // Normalize so the first component of v is implicitly 1.
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            betas[k] = -v0 / alpha;
            qr[(k, k)] = alpha;

            // Apply H_k to the trailing columns.
            let vtail: Vec<f64> = ((k + 1)..m).map(|i| qr[(i, k)]).collect();
            Self::apply_householder(qr.as_mut_slice(), n, k, k + 1, n, betas[k], &vtail);
            if k + 1 < n {
                let (hf, hb, _) = householder_work(n - (k + 1), m - k);
                wk_flops += hf;
                wk_bytes += hb;
            }

            if pivot {
                // Down-date residual column norms.
                for j in (k + 1)..n {
                    let r = qr[(k, j)];
                    colnorm2[j] = (colnorm2[j] - r * r).max(0.0);
                }
            }
        }
        if pivot && pathrep_obs::ledger::collecting() {
            // Rank-revealing diagnostics: the pivot magnitudes |r_kk| decay
            // monotonically; their decay ratio is Algorithm 2's practical
            // conditioning signal for the selected path subset.
            const HEAD: usize = 16;
            let pivots: Vec<f64> = (0..kmax.min(HEAD)).map(|k| qr[(k, k)].abs()).collect();
            let first = (0..kmax).map(|k| qr[(k, k)].abs()).next().unwrap_or(0.0);
            let last = (0..kmax).map(|k| qr[(k, k)].abs()).last().unwrap_or(0.0);
            pathrep_obs::ledger::record("linalg", "qr_pivoted", |f| {
                f.int("rows", m as u64)
                    .int("cols", n as u64)
                    .num("pivot_max", first)
                    .num("pivot_min", last)
                    .num(
                        "pivot_decay",
                        if first > 0.0 { last / first } else { 0.0 },
                    )
                    .nums("pivot_head", &pivots)
                    // Model-based work of this factorization (deterministic,
                    // so t1/t4 ledgers stay byte-identical); achieved
                    // GFLOP/s is wall-time-derived and lives in the
                    // attribution report, never here.
                    .int("work_flops", wk_flops)
                    .int("work_bytes", wk_bytes)
                    .num(
                        "work_intensity",
                        if wk_bytes > 0 {
                            wk_flops as f64 / wk_bytes as f64
                        } else {
                            0.0
                        },
                    );
            });
        }
        Ok(Qr { qr, betas, perm })
    }

    /// Index (absolute) and value of the largest entry of `colnorm2[k..]`.
    /// Ties keep the *last* maximum, matching `Iterator::max_by`, so the
    /// pivot sequence on finite data is unchanged from the historical
    /// implementation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NonFinite`] when any candidate norm is NaN or
    /// infinite — a poisoned norm would make the pivot choice arbitrary, so
    /// the factorization refuses to proceed.
    fn select_pivot(colnorm2: &[f64], k: usize) -> Result<(usize, f64)> {
        let mut best = k;
        let mut best_v = colnorm2[k];
        let mut finite = best_v.is_finite();
        for (off, &v) in colnorm2[k..].iter().enumerate().skip(1) {
            finite &= v.is_finite();
            if vecops::cmp_nan_smallest(v, best_v) != std::cmp::Ordering::Less {
                best = k + off;
                best_v = v;
            }
        }
        if !finite {
            return Err(LinalgError::NonFinite {
                op: "qr pivot selection",
            });
        }
        Ok((best, best_v))
    }

    /// Applies the Householder reflector `H = I − β v vᵀ` — `v` has an
    /// implicit 1 at row `h` and explicit tail `vtail` (rows `h+1..`) — to
    /// columns `j0..j1` of the row-major `data` with row stride `stride`.
    ///
    /// Runs as two row-major sweeps (gather all coefficients
    /// `s_j = β·(vᵀ·col_j)`, then the rank-1 update), parallel over disjoint
    /// column ranges. Per column the accumulation order (rows ascending) is
    /// exactly the classic per-column loop's, so results are bit-identical
    /// at every thread count; workers write disjoint columns and only share
    /// the read-only `vtail`.
    fn apply_householder(
        data: &mut [f64],
        stride: usize,
        h: usize,
        j0: usize,
        j1: usize,
        beta: f64,
        vtail: &[f64],
    ) {
        if beta == 0.0 || j0 >= j1 {
            return;
        }
        let width = j1 - j0;
        let (wf, wb, we) = householder_work(width, vtail.len() + 1);
        pathrep_obs::work::record("qr_factor", wf, wb, we);
        let mut s: Vec<f64> = data[h * stride + j0..h * stride + j1].to_vec();
        // Gather pass: workers own disjoint chunks of `s` and read `data`
        // through a shared borrow — safe slices keep the stride-1 inner
        // loops vectorizable (raw-pointer views would force the compiler
        // to assume `s` aliases `data`).
        {
            let data_ro: &[f64] = data;
            // ~2 flops per (row, column) pair; keep ≥ 2^14 flops per worker.
            let min_cols = (1 << 14) / (2 * (vtail.len() + 1)) + 1;
            pathrep_par::for_each_unit_chunk_mut(&mut s, 1, min_cols, |first, schunk| {
                let len = schunk.len();
                for (di, &vi) in vtail.iter().enumerate() {
                    let row = (h + 1 + di) * stride + j0 + first;
                    for (sj, &x) in schunk.iter_mut().zip(&data_ro[row..row + len]) {
                        *sj += vi * x;
                    }
                }
                for sj in schunk.iter_mut() {
                    *sj *= beta;
                }
            });
        }
        // Update pass: every touched row is written wholly by one worker
        // reading the frozen `s`; per element it is the same single update
        // as the column-partitioned original, so results are bit-identical.
        let rows = &mut data[h * stride..(h + 1 + vtail.len()) * stride];
        let min_rows = (1 << 14) / (2 * width) + 1;
        pathrep_par::for_each_unit_chunk_mut(rows, stride, min_rows, |first, block| {
            for (dk, row) in block.chunks_exact_mut(stride).enumerate() {
                let r = first + dk;
                if r == 0 {
                    for (&sj, x) in s.iter().zip(&mut row[j0..j1]) {
                        *x -= sj;
                    }
                } else {
                    let vi = vtail[r - 1];
                    for (&sj, x) in s.iter().zip(&mut row[j0..j1]) {
                        *x -= sj * vi;
                    }
                }
            }
        });
    }

    /// The upper-triangular factor `R` (`min(m,n)` × `n`).
    pub fn r(&self) -> Matrix {
        let (m, n) = self.qr.shape();
        let k = m.min(n);
        Matrix::from_fn(k, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }

    /// The thin orthogonal factor `Q` (`m` × `min(m,n)`).
    pub fn q_thin(&self) -> Matrix {
        let (m, n) = self.qr.shape();
        let k = m.min(n);
        let mut q = Matrix::from_fn(m, k, |i, j| if i == j { 1.0 } else { 0.0 });
        // Apply H_0 … H_{k-1} to the identity, in reverse.
        for h in (0..k).rev() {
            if self.betas[h] == 0.0 {
                continue;
            }
            let vtail: Vec<f64> = ((h + 1)..m).map(|i| self.qr[(i, h)]).collect();
            Self::apply_householder(q.as_mut_slice(), k, h, 0, k, self.betas[h], &vtail);
        }
        q
    }

    /// The column permutation. `perm()[k]` is the original index of the
    /// column standing at position `k` of the factored matrix. For the
    /// unpivoted factorization this is the identity.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Numerical rank from the diagonal of R: the count of `|r_kk|` above
    /// `tol * |r_00|`. Only meaningful for the *pivoted* factorization.
    pub fn rank(&self, tol: f64) -> usize {
        let k = self.qr.nrows().min(self.qr.ncols());
        if k == 0 {
            return 0;
        }
        let r00 = self.qr[(0, 0)].abs();
        if r00 == 0.0 {
            return 0;
        }
        (0..k)
            .take_while(|&i| self.qr[(i, i)].abs() > tol * r00)
            .count()
    }

    /// Applies `Qᵀ` to a vector of length `m`, in place.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `b.len() != m`.
    pub fn apply_qt(&self, b: &mut [f64]) -> Result<()> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "apply_qt",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let k = m.min(n);
        for h in 0..k {
            if self.betas[h] == 0.0 {
                continue;
            }
            let mut s = b[h];
            for i in (h + 1)..m {
                s += self.qr[(i, h)] * b[i];
            }
            s *= self.betas[h];
            b[h] -= s;
            for i in (h + 1)..m {
                b[i] -= s * self.qr[(i, h)];
            }
        }
        Ok(())
    }

    /// Least-squares solution of `min ‖A x − b‖₂` for full-column-rank `A`.
    ///
    /// Accounts for the column permutation, returning `x` in the original
    /// column order.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] on a wrong-length `b`.
    /// * [`LinalgError::Singular`] when `R` has a (numerically) zero diagonal.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if m < n {
            return Err(LinalgError::InvalidArgument {
                what: "least squares requires m >= n; use the SVD pseudo-inverse otherwise",
            });
        }
        let mut qtb = b.to_vec();
        self.apply_qt(&mut qtb)?;
        let mut y = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = qtb[i];
            for j in (i + 1)..n {
                s -= self.qr[(i, j)] * y[j];
            }
            let d = self.qr[(i, i)];
            if d.abs() < 1e-300 {
                return Err(LinalgError::Singular);
            }
            y[i] = s / d;
        }
        // Undo the permutation: y answers the permuted system.
        let mut x = vec![0.0; n];
        for (k, &orig) in self.perm.iter().enumerate() {
            x[orig] = y[k];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, -1.0, 4.0],
            &[1.0, 4.0, -2.0],
            &[1.0, 4.0, 2.0],
            &[1.0, -1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn reconstruction_unpivoted() {
        let a = tall();
        let qr = Qr::compute(&a).unwrap();
        let back = qr.q_thin().matmul(&qr.r()).unwrap();
        assert!(back.approx_eq(&a, 1e-12));
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = tall();
        let q = Qr::compute(&a).unwrap().q_thin();
        let qtq = q.transpose().matmul(&q).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn nan_input_is_rejected_not_mispivoted() {
        // Regression: pivot selection used to treat a NaN column norm as
        // "equal" to everything, silently steering the factorization by
        // whatever order the scan happened to visit. Poisoned input must
        // now surface as an explicit error from both pivot sites (the
        // initial selection and the recomputed-norm selection).
        let mut a = tall();
        a[(2, 1)] = f64::NAN;
        match Qr::compute_pivoted(&a) {
            Err(LinalgError::NonFinite { op }) => {
                assert!(op.contains("pivot"), "unexpected op: {op}")
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        let mut b = tall();
        b[(0, 0)] = f64::INFINITY;
        assert!(matches!(
            Qr::compute_pivoted(&b),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn reconstruction_pivoted() {
        let a = tall();
        let qr = Qr::compute_pivoted(&a).unwrap();
        let ap = a.select_cols(qr.perm());
        let back = qr.q_thin().matmul(&qr.r()).unwrap();
        assert!(back.approx_eq(&ap, 1e-12));
    }

    #[test]
    fn pivoted_diagonal_is_nonincreasing() {
        let a = Matrix::from_rows(&[
            &[1e-6, 5.0, 1.0],
            &[2e-6, -3.0, 2.0],
            &[1e-6, 1.0, 7.0],
        ])
        .unwrap();
        let qr = Qr::compute_pivoted(&a).unwrap();
        let r = qr.r();
        for i in 1..3 {
            assert!(
                r[(i, i)].abs() <= r[(i - 1, i - 1)].abs() + 1e-12,
                "diagonal must be non-increasing"
            );
        }
        // The tiny first column must be pivoted last.
        assert_eq!(qr.perm()[2], 0);
    }

    #[test]
    fn rank_detects_deficiency() {
        // Third column = first + second.
        let a = Matrix::from_rows(&[
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0],
            &[1.0, 1.0, 2.0],
            &[2.0, 1.0, 3.0],
        ])
        .unwrap();
        let qr = Qr::compute_pivoted(&a).unwrap();
        assert_eq!(qr.rank(1e-10), 2);
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = tall();
        let b = [2.0, 1.0, 0.0, -1.0];
        let x = Qr::compute(&a).unwrap().solve_least_squares(&b).unwrap();
        // Residual must be orthogonal to the column space: Aᵀ(Ax − b) = 0.
        let ax = a.matvec(&x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(b.iter()).map(|(&p, &q)| p - q).collect();
        let g = a.matvec_t(&resid).unwrap();
        for gi in g {
            assert!(gi.abs() < 1e-10, "normal equations violated: {gi}");
        }
    }

    #[test]
    fn least_squares_with_pivoting_returns_original_order() {
        let a = tall();
        let b = [2.0, 1.0, 0.0, -1.0];
        let x0 = Qr::compute(&a).unwrap().solve_least_squares(&b).unwrap();
        let x1 = Qr::compute_pivoted(&a)
            .unwrap()
            .solve_least_squares(&b)
            .unwrap();
        for (u, v) in x0.iter().zip(x1.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn empty_rejected() {
        assert!(Qr::compute(&Matrix::zeros(0, 3)).is_err());
    }

    #[test]
    fn wide_matrix_factors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let qr = Qr::compute_pivoted(&a).unwrap();
        let ap = a.select_cols(qr.perm());
        let back = qr.q_thin().matmul(&qr.r()).unwrap();
        assert!(back.approx_eq(&ap, 1e-12));
    }
}
