//! Error type shared by all linear-algebra routines.

use std::fmt;

/// Error returned by the factorizations and solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible (e.g. multiplying a 3×2 by a 3×3).
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A matrix that must be square is not.
    NotSquare {
        /// Actual shape.
        shape: (usize, usize),
    },
    /// A matrix expected to be non-empty has zero rows or columns.
    Empty,
    /// The matrix is singular (or numerically singular) where a regular one
    /// is required.
    Singular,
    /// Cholesky failed: the matrix is not (numerically) positive definite.
    NotPositiveDefinite {
        /// Leading minor index at which the failure occurred (0-based).
        minor: usize,
    },
    /// An iterative routine did not converge within its iteration budget.
    NoConvergence {
        /// The routine that failed.
        routine: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was out of its valid domain (probability not in (0,1), a
    /// negative tolerance, ...).
    InvalidArgument {
        /// What was wrong.
        what: &'static str,
    },
    /// A NaN or infinity reached a comparison that steers the algorithm
    /// (e.g. a pivot-column selection): the input data is poisoned and any
    /// ordering decision would be arbitrary.
    NonFinite {
        /// The operation that hit the non-finite value.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Empty => write!(f, "matrix must be non-empty"),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite { minor } => write!(
                f,
                "matrix is not positive definite (failure at leading minor {minor})"
            ),
            LinalgError::NoConvergence {
                routine,
                iterations,
            } => write!(f, "{routine} did not converge after {iterations} iterations"),
            LinalgError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
            LinalgError::NonFinite { op } => {
                write!(f, "non-finite value (NaN or infinity) encountered in {op}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (3, 2),
            rhs: (3, 3),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("3x2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(LinalgError::Singular);
        assert_eq!(e.to_string(), "matrix is singular");
    }
}
