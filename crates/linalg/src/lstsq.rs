//! Least-squares solvers and the pseudo-inverse convenience API.

use crate::cholesky::Cholesky;
use crate::qr::Qr;
use crate::svd::Svd;
use crate::{LinalgError, Matrix, Result};

/// Solves `min ‖A x − b‖₂` by Householder QR (requires `m ≥ n` and full
/// column rank).
///
/// # Errors
///
/// * [`LinalgError::InvalidArgument`] when `m < n` (use
///   [`solve_least_squares_svd`] instead).
/// * [`LinalgError::Singular`] when `A` is column-rank deficient.
///
/// # Example
///
/// ```
/// use pathrep_linalg::{Matrix, lstsq};
///
/// # fn main() -> Result<(), pathrep_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]])?;
/// let x = lstsq::solve_least_squares(&a, &[1.0, 1.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::compute(a)?.solve_least_squares(b)
}

/// Minimum-norm least-squares solution via the SVD pseudo-inverse; handles
/// any shape and rank. Singular values below `tol · s_max` are discarded.
///
/// # Errors
///
/// Propagates SVD errors ([`LinalgError::Empty`],
/// [`LinalgError::NoConvergence`]) and shape mismatches.
pub fn solve_least_squares_svd(a: &Matrix, b: &[f64], tol: f64) -> Result<Vec<f64>> {
    let svd = Svd::compute(a)?;
    svd.pseudo_inverse(tol)?.matvec(b)
}

/// Moore–Penrose pseudo-inverse with relative cutoff `tol`.
///
/// # Errors
///
/// Propagates SVD errors.
pub fn pseudo_inverse(a: &Matrix, tol: f64) -> Result<Matrix> {
    Svd::compute(a)?.pseudo_inverse(tol)
}

/// Solves the regularized normal equations `(AᵀA + λI) x = Aᵀ b`
/// (ridge regression). `λ > 0` guarantees a unique solution for any `A`.
///
/// # Errors
///
/// * [`LinalgError::InvalidArgument`] when `lambda < 0`.
/// * Propagates Cholesky errors if `lambda == 0` and `AᵀA` is singular.
pub fn solve_ridge(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if lambda < 0.0 {
        return Err(LinalgError::InvalidArgument {
            what: "ridge parameter lambda must be non-negative",
        });
    }
    let mut gram = a.transpose().matmul(a)?;
    for i in 0..gram.nrows() {
        gram[(i, i)] += lambda;
    }
    let atb = a.matvec_t(b)?;
    Cholesky::compute(&gram)?.solve(&atb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_and_svd_agree_on_full_rank() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0],
            &[0.0, 1.0],
            &[1.0, 0.0],
            &[2.0, 1.0],
        ])
        .unwrap();
        let b = [1.0, -1.0, 0.5, 2.0];
        let x1 = solve_least_squares(&a, &b).unwrap();
        let x2 = solve_least_squares_svd(&a, &b, 1e-12).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn svd_handles_rank_deficiency_with_min_norm() {
        // Columns identical: the min-norm solution splits the weight evenly.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let x = solve_least_squares_svd(&a, &[2.0, 2.0], 1e-12).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ridge_shrinks_solution() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let x0 = solve_ridge(&a, &[1.0, 1.0], 0.0).unwrap();
        let x1 = solve_ridge(&a, &[1.0, 1.0], 1.0).unwrap();
        assert!((x0[0] - 1.0).abs() < 1e-12);
        assert!((x1[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ridge_rejects_negative_lambda() {
        let a = Matrix::identity(2);
        assert!(solve_ridge(&a, &[1.0, 1.0], -1.0).is_err());
    }

    #[test]
    fn underdetermined_requires_svd_route() {
        let a = Matrix::from_rows(&[&[1.0, 1.0, 0.0]]).unwrap();
        assert!(solve_least_squares(&a, &[1.0]).is_err());
        let x = solve_least_squares_svd(&a, &[1.0], 1e-12).unwrap();
        let r = a.matvec(&x).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pseudo_inverse_shape() {
        let a = Matrix::zeros(3, 5);
        let p = pseudo_inverse(
            &Matrix::from_fn(3, 5, |i, j| (i + j) as f64),
            1e-12,
        )
        .unwrap();
        assert_eq!(p.shape(), (5, 3));
        let _ = a;
    }
}
