//! Seeded randomized range-finder and sketched SVD (Halko–Martinsson–
//! Tropp), replacing the full Golub–Reinsch run in Algorithm 1 for large
//! sparse instances.
//!
//! The paper's selection only ever consumes the **leading** left singular
//! subspace of `A = G·Σ` — the effective rank is far below `min(m, n)` by
//! construction — so a rank-`ℓ` sketch captures everything the pivoted QR
//! of Algorithm 2 needs at a fraction of the dense cost:
//!
//! 1. `Y = A·Ω` with a Gaussian test matrix `Ω` (`n×ℓ`),
//! 2. optional subspace (power) iterations `Y ← A·(Aᵀ·Y)` with QR
//!    re-orthonormalisation between products, sharpening the spectrum gap,
//! 3. `Q = qr(Y).q_thin()`, `B = Qᵀ·A` (`ℓ×n`),
//! 4. a small dense SVD of `B`; then `U ≈ Q·U_B` and `s ≈ s_B`.
//!
//! Pivoted QR (column selection) runs only on the reduced sketch, never on
//! the full matrix.
//!
//! # Determinism contract
//!
//! The sketch is **seeded**: `Ω` is filled row-major from a single
//! `StdRng::seed_from_u64(seed)` stream — fixed seed, fixed lane order,
//! generated sequentially on the calling thread. Every downstream product
//! uses the deterministic kernels of [`crate::sparse`] and the
//! bit-identical QR/SVD, so the whole sketch is bit-identical at any
//! `PATHREP_THREADS` setting.

use crate::qr::Qr;
use crate::sparse::SparseMatrix;
use crate::svd::Svd;
use crate::{gauss, LinalgError, Matrix, Result};
use rand::{rngs::StdRng, SeedableRng};

/// Default number of sketch columns (`ℓ`): generous against the effective
/// ranks the paper reports (≈ tens) while keeping the reduced problems
/// trivially small.
pub const DEFAULT_SKETCH_COLS: usize = 96;

/// Default subspace-iteration count: two power iterations are the
/// standard accuracy/cost trade-off for slowly decaying spectra.
pub const DEFAULT_POWER_ITERS: usize = 2;

/// Default sketch seed. Fixed so two runs of the same binary — and the
/// `t1`/`tN` axes of the perf gate — see the identical test matrix.
pub const DEFAULT_SKETCH_SEED: u64 = 0x0DAC_2010;

/// Configuration for [`sketched_svd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchConfig {
    /// Sketch width `ℓ` (clamped to `min(m, n)` internally). Must be > 0.
    pub sketch_cols: usize,
    /// Number of subspace (power) iterations.
    pub power_iters: usize,
    /// RNG seed for the Gaussian test matrix.
    pub seed: u64,
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig {
            sketch_cols: DEFAULT_SKETCH_COLS,
            power_iters: DEFAULT_POWER_ITERS,
            seed: DEFAULT_SKETCH_SEED,
        }
    }
}

/// A sketched left SVD: a real [`Svd`] (left factors only) plus the
/// sketch's own quality telemetry.
#[derive(Debug, Clone)]
pub struct SketchedSvd {
    svd: Svd,
    sketch_cols: usize,
    power_iters: usize,
    energy_capture: f64,
}

impl SketchedSvd {
    /// The decomposition. Drop-in for [`Svd::compute_left`] output: `u()`
    /// is `m×ℓ` with orthonormal columns, `singular_values()` descending.
    pub fn svd(&self) -> &Svd {
        &self.svd
    }

    /// Consumes `self`, returning the decomposition.
    pub fn into_svd(self) -> Svd {
        self.svd
    }

    /// The effective sketch width `ℓ` after clamping.
    pub fn sketch_cols(&self) -> usize {
        self.sketch_cols
    }

    /// Subspace iterations actually run.
    pub fn power_iters(&self) -> usize {
        self.power_iters
    }

    /// `Σ s_i² / ‖A‖_F²` — the fraction of spectral energy the sketch
    /// captured; `1.0` means the sketch subspace contains the whole row
    /// space (exact to rounding).
    pub fn energy_capture(&self) -> f64 {
        self.energy_capture
    }
}

/// Computes a seeded sketched left SVD of a sparse `A` (see the module
/// docs for the algorithm and the determinism contract).
///
/// # Errors
///
/// * [`LinalgError::Empty`] for an empty matrix.
/// * [`LinalgError::InvalidArgument`] when `config.sketch_cols == 0`.
/// * [`LinalgError::NonFinite`] when `A` holds a NaN or infinity — a
///   poisoned input must fail loudly here rather than let an arbitrary
///   ordering decision win the downstream pivot selection.
/// * Errors of the underlying QR/SVD are passed through.
pub fn sketched_svd(a: &SparseMatrix, config: &SketchConfig) -> Result<SketchedSvd> {
    let _span = pathrep_obs::span!("sketched_svd");
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty);
    }
    if config.sketch_cols == 0 {
        return Err(LinalgError::InvalidArgument {
            what: "sketch_cols must be positive",
        });
    }
    if (0..m).any(|r| a.row(r).1.iter().any(|v| !v.is_finite())) {
        return Err(LinalgError::NonFinite {
            op: "sketched svd input",
        });
    }
    pathrep_obs::counter_add("linalg.sketch.calls", 1);
    let wk0 = pathrep_obs::work::thread_tally("spmm");
    let l = config.sketch_cols.min(m).min(n);

    // Fixed seed, fixed lane order: Ω is filled row-major from one
    // sequential stream on the calling thread.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let omega = Matrix::from_fn(n, l, |_, _| gauss::sample_standard_normal(&mut rng));

    let y = a.matmul_dense(&omega)?;
    let mut q = Qr::compute(&y)?.q_thin();
    let at = a.transpose();
    for _ in 0..config.power_iters {
        let z = at.matmul_dense(&q)?;
        let qz = Qr::compute(&z)?.q_thin();
        let y2 = a.matmul_dense(&qz)?;
        q = Qr::compute(&y2)?.q_thin();
    }

    // B = Qᵀ·A is ℓ×n; everything after this line is reduced-size.
    let b = a.premul_dense(&q.transpose())?;
    let small = Svd::compute_left(&b)?;
    let s: Vec<f64> = small.singular_values().to_vec();
    if s.iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::NonFinite {
            op: "sketched svd spectrum",
        });
    }
    let u = q.matmul(small.u())?;

    let fro_sq = {
        let f = a.norm_fro();
        f * f
    };
    let captured: f64 = s.iter().map(|v| v * v).sum();
    // An all-zero matrix trivially captures everything.
    let energy_capture = if fro_sq > 0.0 {
        (captured / fro_sq).min(1.0)
    } else {
        1.0
    };

    if pathrep_obs::ledger::collecting() {
        let work = pathrep_obs::work::thread_tally("spmm").since(wk0);
        let head = &s[..s.len().min(8)];
        pathrep_obs::ledger::record("linalg", "sketch", |f| {
            f.int("rows", m as u64)
                .int("cols", n as u64)
                .int("nnz", a.nnz() as u64)
                .int("sketch_cols", l as u64)
                .int("power_iters", config.power_iters as u64)
                .num("energy_capture", energy_capture)
                .nums("spectrum_head", head)
                .int("work_flops", work.flops)
                .int("work_bytes", work.bytes)
                .num("work_intensity", work.intensity());
        });
    }

    Ok(SketchedSvd {
        svd: Svd::from_left_parts(u, s),
        sketch_cols: l,
        power_iters: config.power_iters,
        energy_capture,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A random m×n matrix of exact rank `r` (product of two Gaussian
    /// factors), returned dense and sparse.
    fn low_rank(m: usize, n: usize, r: usize, seed: u64) -> (Matrix, SparseMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let left = Matrix::from_fn(m, r, |_, _| gauss::sample_standard_normal(&mut rng));
        let right = Matrix::from_fn(r, n, |_, _| gauss::sample_standard_normal(&mut rng));
        let dense = left.matmul(&right).expect("factor product");
        let sparse = SparseMatrix::from_dense(&dense);
        (dense, sparse)
    }

    #[test]
    fn sketch_recovers_low_rank_spectrum() {
        let (dense, sparse) = low_rank(40, 25, 5, 7);
        let exact = Svd::compute_left(&dense).expect("dense svd");
        let sk = sketched_svd(
            &sparse,
            &SketchConfig {
                sketch_cols: 12,
                power_iters: 2,
                seed: 1,
            },
        )
        .expect("sketch");
        for i in 0..5 {
            let (e, a) = (exact.singular_values()[i], sk.svd().singular_values()[i]);
            assert!((e - a).abs() <= 1e-8 * e.max(1.0), "s[{i}]: {e} vs {a}");
        }
        assert!(sk.energy_capture() > 1.0 - 1e-12, "{}", sk.energy_capture());
        assert_eq!(sk.sketch_cols(), 12);
    }

    #[test]
    fn sketch_subspace_reconstructs_low_rank_input() {
        let (dense, sparse) = low_rank(30, 20, 4, 11);
        let sk = sketched_svd(
            &sparse,
            &SketchConfig {
                sketch_cols: 10,
                power_iters: 1,
                seed: 3,
            },
        )
        .expect("sketch");
        // ‖A − U·(Uᵀ·A)‖_F must vanish when rank(A) ≤ ℓ.
        let u = sk.svd().u();
        let proj = u.matmul(&u.transpose().matmul(&dense).expect("UᵀA")).expect("UUᵀA");
        let resid = dense.sub(&proj).expect("residual").norm_fro();
        assert!(resid <= 1e-8 * dense.norm_fro(), "residual {resid}");
    }

    #[test]
    fn same_seed_is_bit_identical_across_runs() {
        let (_, sparse) = low_rank(25, 18, 6, 5);
        let cfg = SketchConfig {
            sketch_cols: 9,
            power_iters: 2,
            seed: 42,
        };
        let a = sketched_svd(&sparse, &cfg).expect("first run");
        let b = sketched_svd(&sparse, &cfg).expect("second run");
        assert_eq!(a.svd().u().as_slice().len(), b.svd().u().as_slice().len());
        for (x, y) in a.svd().u().as_slice().iter().zip(b.svd().u().as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a
            .svd()
            .singular_values()
            .iter()
            .zip(b.svd().singular_values())
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn nan_input_fails_loudly() {
        let sparse = SparseMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, f64::NAN)])
            .expect("triplets");
        let err = sketched_svd(&sparse, &SketchConfig::default()).unwrap_err();
        assert!(matches!(err, LinalgError::NonFinite { .. }), "{err:?}");
    }

    #[test]
    fn zero_sketch_cols_is_rejected() {
        let sparse = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).expect("triplets");
        let err = sketched_svd(
            &sparse,
            &SketchConfig {
                sketch_cols: 0,
                power_iters: 0,
                seed: 0,
            },
        )
        .unwrap_err();
        assert!(matches!(err, LinalgError::InvalidArgument { .. }));
    }

    #[test]
    fn all_zero_matrix_reports_full_capture() {
        let sparse = SparseMatrix::from_triplets(4, 3, &[]).expect("empty triplets");
        let sk = sketched_svd(
            &sparse,
            &SketchConfig {
                sketch_cols: 2,
                power_iters: 0,
                seed: 0,
            },
        )
        .expect("sketch of zero matrix");
        assert_eq!(sk.energy_capture(), 1.0);
        assert!(sk.svd().singular_values().iter().all(|&s| s == 0.0));
    }

    #[test]
    fn deterministic_under_rng_warmup() {
        // The sketch must not depend on ambient RNG state — only its seed.
        let (_, sparse) = low_rank(12, 9, 3, 2);
        let cfg = SketchConfig {
            sketch_cols: 5,
            power_iters: 1,
            seed: 9,
        };
        let a = sketched_svd(&sparse, &cfg).expect("run a");
        let mut warm = StdRng::seed_from_u64(1234);
        let _ = gauss::sample_standard_normal(&mut warm);
        let b = sketched_svd(&sparse, &cfg).expect("run b");
        for (x, y) in a
            .svd()
            .singular_values()
            .iter()
            .zip(b.svd().singular_values())
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
