//! Gaussian sampling and tail statistics.
//!
//! The paper assumes all process variables are iid standard normal; path
//! yields and worst-case bounds come from the Gaussian CDF and its inverse.

use rand::Rng;

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// Uses both uniforms of one Box–Muller pair lazily is unnecessary here; the
/// Monte-Carlo loops in `pathrep-eval` draw millions of values, and the
/// simple polar-free form keeps the stream reproducible across refactors.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard the log against u1 == 0.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fills `out` with iid standard-normal samples.
pub fn fill_standard_normal<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    for x in out.iter_mut() {
        *x = sample_standard_normal(rng);
    }
}

/// Standard normal probability density.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution Φ(x), accurate to ~1e-15 via the
/// complementary error function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function.
///
/// Near zero uses the Maclaurin series of `erf`; elsewhere a Chebyshev
/// rational fit (absolute error below ~1.2e-7, ample for yield and
/// guard-band computations, which tolerate far coarser probabilities).
pub fn erfc(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 0.5 {
        return 1.0 - erf_series(x);
    }
    let e = (-ax * ax).exp();
    let t = 1.0 / (1.0 + 0.5 * ax);
    let tau = t
        * (-1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587
                                        + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp()
        * e;
    if x >= 0.0 {
        tau
    } else {
        2.0 - tau
    }
}

/// Error function via its Maclaurin series, adequate for `|x| < 0.5`.
fn erf_series(x: f64) -> f64 {
    let mut term = x;
    let mut sum = x;
    let x2 = x * x;
    for n in 1..40 {
        term *= -x2 / n as f64;
        let add = term / (2 * n + 1) as f64;
        sum += add;
        if add.abs() < 1e-18 * sum.abs().max(1e-300) {
            break;
        }
    }
    2.0 / std::f64::consts::PI.sqrt() * sum
}

/// Inverse of the standard normal CDF (the probit function), computed with
/// the Acklam rational approximation refined by one Halley step — relative
/// error below 1e-13 over (0, 1).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must lie strictly in (0,1)");
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // Halley refinement.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.0) - 0.841_344_746_068_543).abs() < 1e-7);
        assert!((normal_cdf(-1.0) - 0.158_655_253_931_457).abs() < 1e-7);
        assert!((normal_cdf(3.0) - 0.998_650_101_968_370).abs() < 1e-7);
    }

    #[test]
    fn cdf_is_monotone_and_symmetric() {
        let xs = [-4.0, -2.0, -1.0, -0.3, 0.0, 0.3, 1.0, 2.0, 4.0];
        for w in xs.windows(2) {
            assert!(normal_cdf(w[0]) < normal_cdf(w[1]));
        }
        for &x in &xs {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-7,
                "probit round-trip failed at p={p}"
            );
        }
        assert!(normal_quantile(0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly in (0,1)")]
    fn quantile_rejects_bounds() {
        let _ = normal_quantile(0.0);
    }

    #[test]
    fn samples_have_right_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = sample_standard_normal(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.02, "variance {var} too far from 1");
    }

    #[test]
    fn fill_matches_single_draws() {
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(5);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(5);
        let mut buf = vec![0.0; 8];
        fill_standard_normal(&mut rng1, &mut buf);
        for &b in &buf {
            assert_eq!(b, sample_standard_normal(&mut rng2));
        }
    }

    #[test]
    fn pdf_integrates_to_one_roughly() {
        // Trapezoid over [-8, 8].
        let n = 4000;
        let h = 16.0 / n as f64;
        let mut acc = 0.0;
        for i in 0..=n {
            let x = -8.0 + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            acc += w * normal_pdf(x);
        }
        assert!((acc * h - 1.0).abs() < 1e-10);
    }
}
