//! Dense row-major matrix type and basic arithmetic.

use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64`.
///
/// Rows are contiguous in memory, which makes row extraction (the dominant
/// operation in the paper's row-subset selection) free of strided access.
///
/// # Example
///
/// ```
/// use pathrep_linalg::Matrix;
///
/// # fn main() -> Result<(), pathrep_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = a.matmul(&a.transpose())?;
/// assert_eq!(b[(0, 0)], 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows`×`cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a closure `f(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the rows have unequal
    /// lengths, and [`LinalgError::Empty`] if `rows` is empty or the rows
    /// have zero length.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(LinalgError::Empty);
        }
        let ncols = rows[0].len();
        if ncols == 0 {
            return Err(LinalgError::Empty);
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            if r.len() != ncols {
                return Err(LinalgError::ShapeMismatch {
                    op: "from_rows",
                    lhs: (nrows, ncols),
                    rhs: (1, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix that owns `data` laid out row-major.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (1, data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a diagonal matrix from `diag`.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `i` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        let start = i * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutably borrows row `i` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        let start = i * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Sets column `j` from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols()` or `v.len() != nrows()`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert!(j < self.cols && v.len() == self.rows);
        for (i, &x) in v.iter().enumerate() {
            self[(i, j)] = x;
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let r = self.row(i);
            for (j, &x) in r.iter().enumerate() {
                t[(j, i)] = x;
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// Uses an i-k-j loop order so the innermost loop walks both operands
    /// contiguously, parallelized over blocks of output rows (every output
    /// row is accumulated start-to-finish by one worker, so the result is
    /// bit-identical at any `PATHREP_THREADS` setting).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when
    /// `self.ncols() != other.nrows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.cols);
        pathrep_obs::work::record(
            "matmul",
            (2 * m * n * k) as u64,
            (8 * (m * k + k * n + m * n)) as u64,
            (m * k + k * n + m * n) as u64,
        );
        let mut c = Matrix::zeros(self.rows, other.cols);
        // Keep each worker busy for ~a million flops before fanning out.
        let row_flops = 2 * self.cols * other.cols;
        let min_rows = (1 << 20) / row_flops.max(1) + 1;
        pathrep_par::for_each_unit_chunk_mut(&mut c.data, other.cols, min_rows, |first, block| {
            for (di, c_row) in block.chunks_exact_mut(other.cols).enumerate() {
                let a_row = self.row(first + di);
                for (k, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = other.row(k);
                    for (cj, &bj) in c_row.iter_mut().zip(b_row.iter()) {
                        *cj += aik * bj;
                    }
                }
            }
        });
        Ok(c)
    }

    /// Computes `self * x` for a vector `x`, parallelized over blocks of
    /// rows (each `y[i]` is one independent dot product, so the result is
    /// bit-identical at any thread count).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != ncols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let (m, n) = (self.rows, self.cols);
        pathrep_obs::work::record(
            "matvec",
            (2 * m * n) as u64,
            (8 * (m * n + n + m)) as u64,
            (m * n + n + m) as u64,
        );
        let mut y = vec![0.0; self.rows];
        let min_rows = (1 << 18) / (2 * self.cols).max(1) + 1;
        pathrep_par::for_each_unit_chunk_mut(&mut y, 1, min_rows, |first, block| {
            for (di, yi) in block.iter_mut().enumerate() {
                *yi = crate::vecops::dot(self.row(first + di), x);
            }
        });
        Ok(y)
    }

    /// Computes `selfᵀ * x` without forming the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != nrows()`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_t",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let (m, n) = (self.rows, self.cols);
        pathrep_obs::work::record(
            "matvec",
            (2 * m * n) as u64,
            (8 * (m * n + n + m)) as u64,
            (m * n + n + m) as u64,
        );
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (yj, &aij) in y.iter_mut().zip(self.row(i).iter()) {
                *yj += xi * aij;
            }
        }
        Ok(y)
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on unequal shapes.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on unequal shapes.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    fn zip_with<F: Fn(f64, f64) -> f64>(
        &self,
        other: &Matrix,
        op: &'static str,
        f: F,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self` scaled by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * s).collect(),
        }
    }

    /// Builds a new matrix from the given row indices of `self`, in order.
    ///
    /// Duplicate indices are allowed (useful for bootstrap-style uses).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Builds a new matrix from the given column indices of `self`, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for i in 0..self.rows {
            let src = self.row(i);
            let dst = out.row_mut(i);
            for (k, &j) in indices.iter().enumerate() {
                dst[k] = src[j];
            }
        }
        out
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Places `self` to the left of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (entrywise ∞-norm).
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Sum of entries on the main diagonal.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// `true` when every entry of `self - other` is within `tol` in absolute
    /// value. Shapes must match; mismatched shapes return `false`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for i in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.cols);
            for j in 0..max_cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            if self.cols > max_cols {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), LinalgError::Empty);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn transpose_round_trip() {
        let a = sample();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert!(t.transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_small() {
        let a = sample();
        let b = a.transpose();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 14.0);
        assert_eq!(c[(0, 1)], 32.0);
        assert_eq!(c[(1, 1)], 77.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = sample();
        let i3 = Matrix::identity(3);
        assert!(a.matmul(&i3).unwrap().approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = sample();
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn matvec_and_transposed() {
        let a = sample();
        let y = a.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
        let z = a.matvec_t(&[1.0, 1.0]).unwrap();
        assert_eq!(z, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn select_rows_and_cols() {
        let a = sample();
        let r = a.select_rows(&[1, 0, 1]);
        assert_eq!(r.shape(), (3, 3));
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(r.row(2), &[4.0, 5.0, 6.0]);
        let c = a.select_cols(&[2, 0]);
        assert_eq!(c.row(0), &[3.0, 1.0]);
    }

    #[test]
    fn stacking() {
        let a = sample();
        let v = a.vstack(&a).unwrap();
        assert_eq!(v.shape(), (4, 3));
        let h = a.hstack(&a).unwrap();
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h[(1, 5)], 6.0);
        assert!(a.vstack(&a.transpose()).is_err());
        assert!(a.hstack(&a.transpose()).is_err());
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]).unwrap();
        assert!((a.norm_fro() - 5.0).abs() < 1e-15);
        assert_eq!(a.norm_max(), 4.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = sample();
        let s = a.add(&a).unwrap();
        assert!(s.approx_eq(&a.scale(2.0), 1e-15));
        let d = s.sub(&a).unwrap();
        assert!(d.approx_eq(&a, 1e-15));
    }

    #[test]
    fn from_diag_places_entries() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace(), 6.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d[(2, 2)], 3.0);
    }

    #[test]
    fn set_col_writes_column() {
        let mut a = sample();
        a.set_col(1, &[-1.0, -2.0]);
        assert_eq!(a.col(1), vec![-1.0, -2.0]);
    }
}
