//! Symmetric eigendecomposition (Householder tridiagonalization + implicit
//! QL with Wilkinson shifts).
//!
//! Used by the convex-optimization substrate: projecting onto the
//! ellipsoidal worst-case-error constraint sets requires the
//! eigendecomposition of the segment-delay covariance matrix.

use crate::vecops::pythag;
use crate::{LinalgError, Matrix, Result};

/// Maximum QL iterations per eigenvalue.
const MAX_ITERS: usize = 60;

/// Eigendecomposition `A = Q·diag(λ)·Qᵀ` of a symmetric matrix.
///
/// Eigenvalues are returned in **non-increasing** order with matching
/// eigenvector columns.
///
/// # Example
///
/// ```
/// use pathrep_linalg::{Matrix, eig::SymmetricEig};
///
/// # fn main() -> Result<(), pathrep_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let eig = SymmetricEig::compute(&a)?;
/// assert!((eig.values()[0] - 3.0).abs() < 1e-12);
/// assert!((eig.values()[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEig {
    values: Vec<f64>,
    vectors: Matrix,
}

impl SymmetricEig {
    /// Computes the eigendecomposition of a symmetric matrix. Symmetry is
    /// enforced by averaging `a` with its transpose, so mild asymmetry from
    /// rounding is tolerated.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] / [`LinalgError::Empty`] on bad shapes.
    /// * [`LinalgError::NoConvergence`] if the QL iteration stalls.
    pub fn compute(a: &Matrix) -> Result<Self> {
        if a.nrows() == 0 {
            return Err(LinalgError::Empty);
        }
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.nrows();
        // Symmetrize.
        let mut z = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let mut d = vec![0.0; n];
        let mut e = vec![0.0; n];
        tred2(&mut z, &mut d, &mut e);
        tql2(&mut z, &mut d, &mut e)?;
        // Sort in non-increasing order (a NaN eigenvalue — possible only
        // from non-finite input — deterministically sorts last).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| crate::vecops::cmp_nan_smallest(d[j], d[i]));
        let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
        let vectors = z.select_cols(&order);
        Ok(SymmetricEig { values, vectors })
    }

    /// Eigenvalues in non-increasing order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Orthonormal eigenvectors, one per column, matching [`values`].
    ///
    /// [`values`]: SymmetricEig::values
    pub fn vectors(&self) -> &Matrix {
        &self.vectors
    }

    /// Rebuilds `Q·diag(λ)·Qᵀ`.
    ///
    /// # Errors
    ///
    /// Shape errors cannot occur for a decomposition built by
    /// [`SymmetricEig::compute`]; the `Result` mirrors [`Matrix::matmul`].
    pub fn reconstruct(&self) -> Result<Matrix> {
        let n = self.values.len();
        let mut qd = self.vectors.clone();
        for j in 0..n {
            for i in 0..n {
                qd[(i, j)] *= self.values[j];
            }
        }
        qd.matmul(&self.vectors.transpose())
    }
}

/// Householder reduction of a symmetric matrix to tridiagonal form with
/// accumulated transformations (EISPACK `tred2`, 0-indexed).
#[allow(clippy::needless_range_loop)]
fn tred2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    if n == 1 {
        d[0] = z[(0, 0)];
        z[(0, 0)] = 1.0;
        e[0] = 0.0;
        return;
    }
    for j in 0..n {
        d[j] = z[(n - 1, j)];
    }
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        let mut scale = 0.0;
        if l > 0 {
            for k in 0..=l {
                scale += d[k].abs();
            }
        }
        if scale == 0.0 {
            e[i] = if l > 0 { d[l] } else { d[0] };
            for j in 0..=l {
                d[j] = z[(l, j)];
                z[(i, j)] = 0.0;
                z[(j, i)] = 0.0;
            }
        } else {
            for k in 0..=l {
                d[k] /= scale;
                h += d[k] * d[k];
            }
            let mut f = d[l];
            let mut g = if f > 0.0 { -h.sqrt() } else { h.sqrt() };
            e[i] = scale * g;
            h -= f * g;
            d[l] = f - g;
            for j in 0..=l {
                e[j] = 0.0;
            }
            // Apply the similarity transformation to the remaining rows.
            for j in 0..=l {
                f = d[j];
                z[(j, i)] = f;
                g = e[j] + z[(j, j)] * f;
                for k in (j + 1)..=l {
                    g += z[(k, j)] * d[k];
                    e[k] += z[(k, j)] * f;
                }
                e[j] = g;
            }
            f = 0.0;
            for j in 0..=l {
                e[j] /= h;
                f += e[j] * d[j];
            }
            let hh = f / (h + h);
            for j in 0..=l {
                e[j] -= hh * d[j];
            }
            for j in 0..=l {
                f = d[j];
                g = e[j];
                for k in j..=l {
                    let dk = d[k];
                    let ek = e[k];
                    z[(k, j)] -= f * ek + g * dk;
                }
                d[j] = z[(l, j)];
                z[(i, j)] = 0.0;
            }
        }
        d[i] = h;
    }
    // Accumulate the transformations.
    for i in 0..(n - 1) {
        z[(n - 1, i)] = z[(i, i)];
        z[(i, i)] = 1.0;
        let h = d[i + 1];
        if h != 0.0 {
            for k in 0..=i {
                d[k] = z[(k, i + 1)] / h;
            }
            for j in 0..=i {
                let mut g = 0.0;
                for k in 0..=i {
                    g += z[(k, i + 1)] * z[(k, j)];
                }
                for k in 0..=i {
                    let dk = d[k];
                    z[(k, j)] -= g * dk;
                }
            }
        }
        for k in 0..=i {
            z[(k, i + 1)] = 0.0;
        }
    }
    for j in 0..n {
        d[j] = z[(n - 1, j)];
        z[(n - 1, j)] = 0.0;
    }
    z[(n - 1, n - 1)] = 1.0;
    e[0] = 0.0;
}

/// Implicit QL with Wilkinson shifts on a symmetric tridiagonal matrix
/// (EISPACK `tql2`, 0-indexed), updating the accumulated transformations.
#[allow(clippy::needless_range_loop)]
fn tql2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) -> Result<()> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    let mut f = 0.0_f64;
    let mut tst1 = 0.0_f64;
    let eps = f64::EPSILON;
    for l in 0..n {
        tst1 = tst1.max(d[l].abs() + e[l].abs());
        let mut m = l;
        while m < n {
            if e[m].abs() <= eps * tst1 {
                break;
            }
            m += 1;
        }
        if m == n {
            m = n - 1;
        }
        if m > l {
            let mut iter = 0;
            loop {
                iter += 1;
                if iter > MAX_ITERS {
                    return Err(LinalgError::NoConvergence {
                        routine: "tql2",
                        iterations: MAX_ITERS,
                    });
                }
                // Wilkinson shift.
                let g = d[l];
                let mut p = (d[l + 1] - g) / (2.0 * e[l]);
                let mut r = pythag(p, 1.0);
                if p < 0.0 {
                    r = -r;
                }
                d[l] = e[l] / (p + r);
                d[l + 1] = e[l] * (p + r);
                let dl1 = d[l + 1];
                let mut h = g - d[l];
                for i in (l + 2)..n {
                    d[i] -= h;
                }
                f += h;
                // Implicit QL sweep.
                p = d[m];
                let mut c = 1.0_f64;
                let mut c2 = c;
                let mut c3 = c;
                let el1 = e[l + 1];
                let mut s = 0.0_f64;
                let mut s2 = 0.0_f64;
                for i in (l..m).rev() {
                    c3 = c2;
                    c2 = c;
                    s2 = s;
                    let g2 = c * e[i];
                    h = c * p;
                    r = pythag(p, e[i]);
                    e[i + 1] = s * r;
                    s = e[i] / r;
                    c = p / r;
                    p = c * d[i] - s * g2;
                    d[i + 1] = h + s * (c * g2 + s * d[i]);
                    for k in 0..n {
                        let hz = z[(k, i + 1)];
                        z[(k, i + 1)] = s * z[(k, i)] + c * hz;
                        z[(k, i)] = c * z[(k, i)] - s * hz;
                    }
                }
                p = -s * s2 * c3 * el1 * e[l] / dl1;
                e[l] = s * p;
                d[l] = c * p;
                if e[l].abs() <= eps * tst1 {
                    break;
                }
            }
        }
        d[l] += f;
        e[l] = 0.0;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_eig(a: &Matrix, tol: f64) {
        let eig = SymmetricEig::compute(a).unwrap();
        assert!(eig.reconstruct().unwrap().approx_eq(a, tol));
        let q = eig.vectors();
        let qtq = q.transpose().matmul(q).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(a.nrows()), tol));
        let vals = eig.values();
        for i in 1..vals.len() {
            assert!(vals[i] <= vals[i - 1] + 1e-12);
        }
    }

    #[test]
    fn two_by_two_known() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let eig = SymmetricEig::compute(&a).unwrap();
        assert!((eig.values()[0] - 3.0).abs() < 1e-12);
        assert!((eig.values()[1] - 1.0).abs() < 1e-12);
        check_eig(&a, 1e-12);
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[5.0]]).unwrap();
        let eig = SymmetricEig::compute(&a).unwrap();
        assert_eq!(eig.values(), &[5.0]);
        check_eig(&a, 1e-15);
    }

    #[test]
    fn diagonal_values_pass_through() {
        let a = Matrix::from_diag(&[-1.0, 4.0, 2.0]);
        let eig = SymmetricEig::compute(&a).unwrap();
        assert!((eig.values()[0] - 4.0).abs() < 1e-12);
        assert!((eig.values()[1] - 2.0).abs() < 1e-12);
        assert!((eig.values()[2] + 1.0).abs() < 1e-12);
        check_eig(&a, 1e-12);
    }

    #[test]
    fn random_symmetric() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 25;
        let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let a = b.add(&b.transpose()).unwrap().scale(0.5);
        check_eig(&a, 1e-9);
    }

    #[test]
    fn psd_gram_matrix_has_nonnegative_values() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let b = Matrix::from_fn(10, 6, |_, _| rng.gen_range(-1.0..1.0));
        let a = b.transpose().matmul(&b).unwrap();
        let eig = SymmetricEig::compute(&a).unwrap();
        for &v in eig.values() {
            assert!(v > -1e-10, "Gram matrix eigenvalue {v} must be >= 0");
        }
        check_eig(&a, 1e-9);
    }

    #[test]
    fn eigenvalue_sum_is_trace() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let b = Matrix::from_fn(12, 12, |_, _| rng.gen_range(-2.0..2.0));
        let a = b.add(&b.transpose()).unwrap().scale(0.5);
        let eig = SymmetricEig::compute(&a).unwrap();
        let sum: f64 = eig.values().iter().sum();
        assert!((sum - a.trace()).abs() < 1e-9);
    }

    #[test]
    fn rejects_non_square() {
        assert!(SymmetricEig::compute(&Matrix::zeros(2, 3)).is_err());
    }
}
