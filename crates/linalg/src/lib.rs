//! Dense numerical linear algebra for the `pathrep` workspace.
//!
//! This crate implements, from scratch, every matrix computation the
//! representative-path-selection method of Xie & Davoodi (DAC 2010) relies on:
//!
//! * a dense row-major [`Matrix`] type with the usual arithmetic,
//! * LU with partial pivoting ([`lu`]), Cholesky ([`cholesky`]),
//! * Householder QR and **rank-revealing QR with column pivoting**
//!   ([`qr`]) — the subset-selection workhorse of the paper's Algorithm 2,
//! * the **Golub–Reinsch SVD** ([`svd`]) used for rank and *effective rank*,
//! * symmetric eigendecomposition ([`eig`]) used by the convex solver's
//!   ellipsoid projections,
//! * least squares and the Moore–Penrose pseudo-inverse ([`lstsq`]),
//! * Gaussian sampling and tail statistics ([`gauss`]).
//!
//! # Example
//!
//! ```
//! use pathrep_linalg::{Matrix, svd::Svd};
//!
//! # fn main() -> Result<(), pathrep_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]])?;
//! let svd = Svd::compute(&a)?;
//! assert!((svd.singular_values()[0] - 3.0).abs() < 1e-12);
//! assert_eq!(svd.rank(1e-9), 2);
//! # Ok(())
//! # }
//! ```

// Indexed loops are the clearest form for the triangular-solve and
// factorization kernels in this crate; iterator adapters obscure the
// in-place update patterns.
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod eig;
pub mod error;
pub mod gauss;
pub mod lstsq;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod sketch;
pub mod sparse;
pub mod svd;
pub mod vecops;

pub use error::LinalgError;
pub use matrix::Matrix;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
