//! Singular value decomposition (Golub–Reinsch) and the *effective rank*.
//!
//! The paper's approximate selection (Section 4.2) is driven by the singular
//! value spectrum of the sensitivity matrix `A`: the **effective rank** is
//! the index at which the cumulative singular-value energy reaches
//! `(1 − η)` of the total, and it lower-bounds how few representative paths
//! can predict the rest within tolerance.

use crate::vecops::pythag;
use crate::{LinalgError, Matrix, Result};

/// Maximum implicit-QR sweeps per singular value before giving up.
const MAX_SWEEPS: usize = 75;

/// Thin singular value decomposition `A = U·diag(s)·Vᵀ`.
///
/// For an `m`×`n` input with `k = min(m, n)`, `U` is `m`×`k`, `s` has `k`
/// non-negative entries sorted in non-increasing order, and `V` is `n`×`k`.
///
/// # Example
///
/// ```
/// use pathrep_linalg::{Matrix, svd::Svd};
///
/// # fn main() -> Result<(), pathrep_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]])?;
/// let svd = Svd::compute(&a)?;
/// assert!(svd.reconstruct()?.approx_eq(&a, 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    u: Matrix,
    s: Vec<f64>,
    v: Matrix,
}

impl Svd {
    /// Computes the thin SVD of `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] for an empty matrix.
    /// * [`LinalgError::NoConvergence`] if the implicit-QR phase exceeds its
    ///   sweep budget (never observed on finite input).
    pub fn compute(a: &Matrix) -> Result<Self> {
        let _span = pathrep_obs::span!("svd");
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        pathrep_obs::counter_add("linalg.svd.calls", 1);
        let svd = if m >= n {
            let (u, s, v) = golub_reinsch(a)?;
            Svd { u, s, v }
        } else {
            // SVD(Aᵀ) = V Σ Uᵀ  ⇒  swap the factors.
            let (v, s, u) = golub_reinsch(&a.transpose())?;
            Svd { u, s, v }
        };
        svd.record_health(m, n);
        Ok(svd)
    }

    /// Appends a `linalg/svd` numerical-health ledger record: the
    /// condition-number estimate `s_max/s_min`, the head/tail split of the
    /// singular-value energy and the leading spectrum values. No-op unless
    /// `PATHREP_OBS_LEDGER` is set.
    fn record_health(&self, m: usize, n: usize) {
        if !pathrep_obs::ledger::collecting() {
            return;
        }
        let smax = self.s.first().copied().unwrap_or(0.0);
        let smin = self.s.last().copied().unwrap_or(0.0);
        let total: f64 = self.s.iter().sum();
        // Head = leading 8 values: enough to see spectrum decay without
        // storing hundreds of entries per factorization.
        const HEAD: usize = 8;
        let head: f64 = self.s.iter().take(HEAD).sum();
        let head_frac = if total > 0.0 { head / total } else { 0.0 };
        pathrep_obs::ledger::record("linalg", "svd", |f| {
            f.int("rows", m as u64)
                .int("cols", n as u64)
                .num("smax", smax)
                .num("smin", smin)
                .num("cond", if smin > 0.0 { smax / smin } else { f64::INFINITY })
                .num("head_energy", head_frac)
                .num("tail_energy", 1.0 - head_frac)
                .nums("spectrum_head", &self.s[..self.s.len().min(HEAD * 2)]);
        });
    }

    /// Left singular vectors (`m` × `k`).
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// Singular values, non-negative and non-increasing.
    pub fn singular_values(&self) -> &[f64] {
        &self.s
    }

    /// Right singular vectors (`n` × `k`).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Numerical rank: the number of singular values above `tol · s_max`.
    pub fn rank(&self, tol: f64) -> usize {
        let smax = self.s.first().copied().unwrap_or(0.0);
        if smax <= 0.0 {
            return 0;
        }
        self.s.iter().take_while(|&&x| x > tol * smax).count()
    }

    /// The paper's **effective rank** for energy threshold `η` (Section 4.2):
    /// the smallest `k` with `Σ_{i<k} s_i ≥ (1 − η)·Σ_i s_i`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] unless `0 ≤ η < 1`.
    pub fn effective_rank(&self, eta: f64) -> Result<usize> {
        if !(0.0..1.0).contains(&eta) {
            return Err(LinalgError::InvalidArgument {
                what: "effective-rank threshold eta must lie in [0, 1)",
            });
        }
        let total: f64 = self.s.iter().sum();
        if total == 0.0 {
            return Ok(0);
        }
        let target = (1.0 - eta) * total;
        let mut acc = 0.0;
        for (k, &sv) in self.s.iter().enumerate() {
            acc += sv;
            if acc >= target - 1e-15 * total {
                return Ok(k + 1);
            }
        }
        Ok(self.s.len())
    }

    /// Singular values normalized by their sum (`λ_i / Σλ`), the quantity
    /// plotted in the paper's Figure 2.
    pub fn normalized_singular_values(&self) -> Vec<f64> {
        let total: f64 = self.s.iter().sum();
        if total == 0.0 {
            return vec![0.0; self.s.len()];
        }
        self.s.iter().map(|&x| x / total).collect()
    }

    /// Rebuilds `U·diag(s)·Vᵀ`.
    ///
    /// # Errors
    ///
    /// Shape errors cannot occur for a decomposition built by
    /// [`Svd::compute`]; the `Result` mirrors [`Matrix::matmul`].
    pub fn reconstruct(&self) -> Result<Matrix> {
        let k = self.s.len();
        let mut us = self.u.clone();
        for j in 0..k {
            for i in 0..us.nrows() {
                us[(i, j)] *= self.s[j];
            }
        }
        us.matmul(&self.v.transpose())
    }

    /// Moore–Penrose pseudo-inverse with relative cutoff `tol` (singular
    /// values below `tol · s_max` are treated as zero).
    ///
    /// # Errors
    ///
    /// Shape errors cannot occur for a decomposition built by
    /// [`Svd::compute`]; the `Result` mirrors [`Matrix::matmul`].
    pub fn pseudo_inverse(&self, tol: f64) -> Result<Matrix> {
        let k = self.s.len();
        let smax = self.s.first().copied().unwrap_or(0.0);
        let mut vs = self.v.clone();
        for j in 0..k {
            let inv = if smax > 0.0 && self.s[j] > tol * smax {
                1.0 / self.s[j]
            } else {
                0.0
            };
            for i in 0..vs.nrows() {
                vs[(i, j)] *= inv;
            }
        }
        vs.matmul(&self.u.transpose())
    }
}

#[inline]
fn same_sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Golub–Reinsch SVD for `m ≥ n`: Householder bidiagonalization followed by
/// implicit-shift QR on the bidiagonal form. Returns `(U, s, V)` with `U`
/// `m`×`n`, `s` of length `n`, `V` `n`×`n`, sorted by decreasing singular
/// value with non-negative values.
#[allow(clippy::needless_range_loop)]
fn golub_reinsch(a_in: &Matrix) -> Result<(Matrix, Vec<f64>, Matrix)> {
    let (m, n) = a_in.shape();
    debug_assert!(m >= n);
    let mut a = a_in.clone();
    let mut w = vec![0.0_f64; n];
    let mut v = Matrix::zeros(n, n);
    let mut rv1 = vec![0.0_f64; n];

    let (mut g, mut scale, mut anorm) = (0.0_f64, 0.0_f64, 0.0_f64);

    // --- Householder reduction to bidiagonal form ---
    for i in 0..n {
        let l = i + 1;
        rv1[i] = scale * g;
        g = 0.0;
        let mut s;
        scale = 0.0;
        if i < m {
            for k in i..m {
                scale += a[(k, i)].abs();
            }
            if scale != 0.0 {
                s = 0.0;
                for k in i..m {
                    a[(k, i)] /= scale;
                    s += a[(k, i)] * a[(k, i)];
                }
                let f = a[(i, i)];
                g = -same_sign(s.sqrt(), f);
                let h = f * g - s;
                a[(i, i)] = f - g;
                for j in l..n {
                    let mut s2 = 0.0;
                    for k in i..m {
                        s2 += a[(k, i)] * a[(k, j)];
                    }
                    let f2 = s2 / h;
                    for k in i..m {
                        let aki = a[(k, i)];
                        a[(k, j)] += f2 * aki;
                    }
                }
                for k in i..m {
                    a[(k, i)] *= scale;
                }
            }
        }
        w[i] = scale * g;
        g = 0.0;
        scale = 0.0;
        if i < m && i != n - 1 {
            for k in l..n {
                scale += a[(i, k)].abs();
            }
            if scale != 0.0 {
                s = 0.0;
                for k in l..n {
                    a[(i, k)] /= scale;
                    s += a[(i, k)] * a[(i, k)];
                }
                let f = a[(i, l)];
                g = -same_sign(s.sqrt(), f);
                let h = f * g - s;
                a[(i, l)] = f - g;
                for k in l..n {
                    rv1[k] = a[(i, k)] / h;
                }
                for j in l..m {
                    let mut s2 = 0.0;
                    for k in l..n {
                        s2 += a[(j, k)] * a[(i, k)];
                    }
                    for k in l..n {
                        let rk = rv1[k];
                        a[(j, k)] += s2 * rk;
                    }
                }
                for k in l..n {
                    a[(i, k)] *= scale;
                }
            }
        }
        anorm = anorm.max(w[i].abs() + rv1[i].abs());
    }

    // --- Accumulation of right-hand transformations ---
    let mut l = n; // sentinel; set properly on the first pass below
    for i in (0..n).rev() {
        if i < n - 1 {
            if g != 0.0 {
                for j in l..n {
                    // Double division avoids possible underflow.
                    v[(j, i)] = (a[(i, j)] / a[(i, l)]) / g;
                }
                for j in l..n {
                    let mut s = 0.0;
                    for k in l..n {
                        s += a[(i, k)] * v[(k, j)];
                    }
                    for k in l..n {
                        let vki = v[(k, i)];
                        v[(k, j)] += s * vki;
                    }
                }
            }
            for j in l..n {
                v[(i, j)] = 0.0;
                v[(j, i)] = 0.0;
            }
        }
        v[(i, i)] = 1.0;
        g = rv1[i];
        l = i;
    }

    // --- Accumulation of left-hand transformations ---
    for i in (0..n.min(m)).rev() {
        let l = i + 1;
        g = w[i];
        for j in l..n {
            a[(i, j)] = 0.0;
        }
        if g != 0.0 {
            g = 1.0 / g;
            for j in l..n {
                let mut s = 0.0;
                for k in l..m {
                    s += a[(k, i)] * a[(k, j)];
                }
                let f = (s / a[(i, i)]) * g;
                for k in i..m {
                    let aki = a[(k, i)];
                    a[(k, j)] += f * aki;
                }
            }
            for j in i..m {
                a[(j, i)] *= g;
            }
        } else {
            for j in i..m {
                a[(j, i)] = 0.0;
            }
        }
        a[(i, i)] += 1.0;
    }

    // --- Diagonalization of the bidiagonal form ---
    let eps = f64::EPSILON;
    let mut qr_sweeps: u64 = 0;
    for k in (0..n).rev() {
        let mut converged = false;
        for sweep in 0..=MAX_SWEEPS {
            if sweep == MAX_SWEEPS {
                return Err(LinalgError::NoConvergence {
                    routine: "svd",
                    iterations: MAX_SWEEPS,
                });
            }
            // Test for splitting: find the largest l ≤ k with negligible
            // rv1[l]; note rv1[0] is always zero so l = 0 terminates.
            let mut flag = true;
            let mut l = k;
            loop {
                if rv1[l].abs() <= eps * anorm {
                    flag = false;
                    break;
                }
                if w[l - 1].abs() <= eps * anorm {
                    break;
                }
                l -= 1;
            }
            if flag {
                // Cancellation of rv1[l] when w[l-1] is negligible.
                let mut c = 0.0;
                let mut s = 1.0;
                let nm = l - 1;
                for i in l..=k {
                    let mut f = s * rv1[i];
                    rv1[i] *= c;
                    if f.abs() <= eps * anorm {
                        break;
                    }
                    g = w[i];
                    let mut h = pythag(f, g);
                    w[i] = h;
                    h = 1.0 / h;
                    c = g * h;
                    s = -f * h;
                    for j in 0..m {
                        let y = a[(j, nm)];
                        let z = a[(j, i)];
                        a[(j, nm)] = y * c + z * s;
                        a[(j, i)] = z * c - y * s;
                    }
                    let _ = f; // f fully consumed above
                    f = 0.0;
                    let _ = f;
                }
            }
            let z = w[k];
            if l == k {
                // Converged; enforce non-negative singular value.
                if z < 0.0 {
                    w[k] = -z;
                    for j in 0..n {
                        v[(j, k)] = -v[(j, k)];
                    }
                }
                converged = true;
                break;
            }
            // Shift from the bottom 2×2 minor.
            qr_sweeps += 1;
            let mut x = w[l];
            let nm = k - 1;
            let mut y = w[nm];
            g = rv1[nm];
            let mut h = rv1[k];
            let mut f = ((y - z) * (y + z) + (g - h) * (g + h)) / (2.0 * h * y);
            g = pythag(f, 1.0);
            f = ((x - z) * (x + z) + h * ((y / (f + same_sign(g, f))) - h)) / x;
            // Next QR transformation.
            let mut c = 1.0;
            let mut s = 1.0;
            for j in l..=nm {
                let i = j + 1;
                g = rv1[i];
                y = w[i];
                h = s * g;
                g *= c;
                let mut zz = pythag(f, h);
                rv1[j] = zz;
                c = f / zz;
                s = h / zz;
                f = x * c + g * s;
                g = g * c - x * s;
                h = y * s;
                y *= c;
                for jj in 0..n {
                    let xv = v[(jj, j)];
                    let zv = v[(jj, i)];
                    v[(jj, j)] = xv * c + zv * s;
                    v[(jj, i)] = zv * c - xv * s;
                }
                zz = pythag(f, h);
                w[j] = zz;
                if zz != 0.0 {
                    let inv = 1.0 / zz;
                    c = f * inv;
                    s = h * inv;
                }
                f = c * g + s * y;
                x = c * y - s * g;
                for jj in 0..m {
                    let ya = a[(jj, j)];
                    let za = a[(jj, i)];
                    a[(jj, j)] = ya * c + za * s;
                    a[(jj, i)] = za * c - ya * s;
                }
            }
            rv1[l] = 0.0;
            rv1[k] = f;
            w[k] = x;
        }
        debug_assert!(converged);
    }

    pathrep_obs::counter_add("linalg.svd.qr_sweeps", qr_sweeps);

    // --- Sort by decreasing singular value ---
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| w[j].partial_cmp(&w[i]).unwrap_or(std::cmp::Ordering::Equal));
    let s_sorted: Vec<f64> = order.iter().map(|&i| w[i]).collect();
    let u_sorted = a.select_cols(&order);
    let v_sorted = v.select_cols(&order);
    Ok((u_sorted, s_sorted, v_sorted))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_svd(a: &Matrix, tol: f64) {
        let svd = Svd::compute(a).unwrap();
        let k = a.nrows().min(a.ncols());
        assert_eq!(svd.singular_values().len(), k);
        // Reconstruction.
        assert!(
            svd.reconstruct().unwrap().approx_eq(a, tol),
            "reconstruction failed"
        );
        // Orthonormality of both factors.
        let utu = svd.u().transpose().matmul(svd.u()).unwrap();
        assert!(utu.approx_eq(&Matrix::identity(k), tol), "U not orthonormal");
        let vtv = svd.v().transpose().matmul(svd.v()).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(k), tol), "V not orthonormal");
        // Ordering and non-negativity.
        let s = svd.singular_values();
        for i in 0..k {
            assert!(s[i] >= 0.0);
            if i > 0 {
                assert!(s[i] <= s[i - 1] + 1e-12);
            }
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let svd = Svd::compute(&a).unwrap();
        let s = svd.singular_values();
        assert!((s[0] - 3.0).abs() < 1e-12);
        assert!((s[1] - 2.0).abs() < 1e-12);
        assert!((s[2] - 1.0).abs() < 1e-12);
        check_svd(&a, 1e-12);
    }

    #[test]
    fn tall_matrix() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0],
            &[3.0, 4.0],
            &[5.0, 6.0],
            &[7.0, 8.0],
        ])
        .unwrap();
        check_svd(&a, 1e-11);
    }

    #[test]
    fn wide_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]]).unwrap();
        check_svd(&a, 1e-11);
    }

    #[test]
    fn rank_deficient() {
        // Rank 1: every row is a multiple of the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0], &[3.0, 6.0, 9.0]])
            .unwrap();
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        check_svd(&a, 1e-11);
    }

    #[test]
    fn known_singular_values() {
        // A = [[3, 0], [4, 5]] has singular values sqrt(45/2 ± ...) — check
        // against the eigenvalues of AᵀA: s1·s2 = |det| = 15, s1²+s2² = 50.
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 5.0]]).unwrap();
        let svd = Svd::compute(&a).unwrap();
        let s = svd.singular_values();
        assert!((s[0] * s[1] - 15.0).abs() < 1e-10);
        assert!((s[0] * s[0] + s[1] * s[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn random_matrix_properties() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Matrix::from_fn(40, 17, |_, _| rng.gen_range(-1.0..1.0));
        check_svd(&a, 1e-9);
        let b = Matrix::from_fn(17, 40, |_, _| rng.gen_range(-1.0..1.0));
        check_svd(&b, 1e-9);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(3, 2);
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-12), 0);
        assert!(svd.singular_values().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn effective_rank_low_rank_plus_noise() {
        // Two dominant directions plus faint noise: effective rank at 5%
        // should be 2 while the exact rank is full.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut a = Matrix::from_fn(30, 10, |_, _| 1e-4 * rng.gen_range(-1.0..1.0));
        for i in 0..30 {
            let t = i as f64;
            for j in 0..10 {
                a[(i, j)] += (t * 0.1).sin() * (j as f64 + 1.0) + (t * 0.3).cos() * (j as f64);
            }
        }
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-12), 10);
        let er = svd.effective_rank(0.05).unwrap();
        assert!(er <= 3, "effective rank {er} should be tiny");
    }

    #[test]
    fn effective_rank_rejects_bad_eta() {
        let a = Matrix::identity(2);
        let svd = Svd::compute(&a).unwrap();
        assert!(svd.effective_rank(1.0).is_err());
        assert!(svd.effective_rank(-0.1).is_err());
        assert_eq!(svd.effective_rank(0.0).unwrap(), 2);
    }

    #[test]
    fn normalized_values_sum_to_one() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.5, 3.0], &[1.0, 1.0]]).unwrap();
        let svd = Svd::compute(&a).unwrap();
        let nv = svd.normalized_singular_values();
        let sum: f64 = nv.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pseudo_inverse_of_full_rank_is_inverse() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let pinv = Svd::compute(&a).unwrap().pseudo_inverse(1e-12).unwrap();
        assert!(a.matmul(&pinv).unwrap().approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn pseudo_inverse_satisfies_penrose_conditions() {
        // Rank-deficient example.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[0.0, 0.0]]).unwrap();
        let p = Svd::compute(&a).unwrap().pseudo_inverse(1e-12).unwrap();
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!(apa.approx_eq(&a, 1e-10), "A P A = A violated");
        let pap = p.matmul(&a).unwrap().matmul(&p).unwrap();
        assert!(pap.approx_eq(&p, 1e-10), "P A P = P violated");
        let ap = a.matmul(&p).unwrap();
        assert!(ap.approx_eq(&ap.transpose(), 1e-10), "(AP)ᵀ = AP violated");
        let pa = p.matmul(&a).unwrap();
        assert!(pa.approx_eq(&pa.transpose(), 1e-10), "(PA)ᵀ = PA violated");
    }

    #[test]
    fn single_column() {
        let a = Matrix::from_rows(&[&[3.0], &[4.0]]).unwrap();
        let svd = Svd::compute(&a).unwrap();
        assert!((svd.singular_values()[0] - 5.0).abs() < 1e-12);
        check_svd(&a, 1e-12);
    }

    #[test]
    fn single_row() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        let svd = Svd::compute(&a).unwrap();
        assert!((svd.singular_values()[0] - 5.0).abs() < 1e-12);
        check_svd(&a, 1e-12);
    }
}
