//! Singular value decomposition (Golub–Reinsch) and the *effective rank*.
//!
//! The paper's approximate selection (Section 4.2) is driven by the singular
//! value spectrum of the sensitivity matrix `A`: the **effective rank** is
//! the index at which the cumulative singular-value energy reaches
//! `(1 − η)` of the total, and it lower-bounds how few representative paths
//! can predict the rest within tolerance.

use crate::vecops::pythag;
use crate::{LinalgError, Matrix, Result};

/// Maximum implicit-QR sweeps per singular value before giving up.
const MAX_SWEEPS: usize = 75;

/// Thin singular value decomposition `A = U·diag(s)·Vᵀ`.
///
/// For an `m`×`n` input with `k = min(m, n)`, `U` is `m`×`k`, `s` has `k`
/// non-negative entries sorted in non-increasing order, and `V` is `n`×`k`.
///
/// # Example
///
/// ```
/// use pathrep_linalg::{Matrix, svd::Svd};
///
/// # fn main() -> Result<(), pathrep_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]])?;
/// let svd = Svd::compute(&a)?;
/// assert!(svd.reconstruct()?.approx_eq(&a, 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    u: Matrix,
    s: Vec<f64>,
    /// `None` when built by [`Svd::compute_left`].
    v: Option<Matrix>,
}

impl Svd {
    /// Assembles a left-only decomposition from precomputed factors — the
    /// crate-internal exit point of the sketched SVD
    /// ([`crate::sketch::sketched_svd`]), which builds `U` and `s` from a
    /// reduced sketch rather than a Golub–Reinsch run. Behaves exactly
    /// like a [`Svd::compute_left`] result: [`Svd::v`] panics,
    /// reconstruction errors.
    pub(crate) fn from_left_parts(u: Matrix, s: Vec<f64>) -> Self {
        Svd { u, s, v: None }
    }

    /// Computes the thin SVD of `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] for an empty matrix.
    /// * [`LinalgError::NoConvergence`] if the implicit-QR phase exceeds its
    ///   sweep budget (never observed on finite input).
    pub fn compute(a: &Matrix) -> Result<Self> {
        let _span = pathrep_obs::span!("svd");
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        pathrep_obs::counter_add("linalg.svd.calls", 1);
        let wk0 = pathrep_obs::work::thread_tally("svd");
        let svd = if m >= n {
            let (u, s, v) = golub_reinsch(a, true)?;
            Svd { u, s, v }
        } else {
            // SVD(Aᵀ) = V Σ Uᵀ  ⇒  swap the factors.
            let (v, s, u) = golub_reinsch(&a.transpose(), true)?;
            Svd {
                u: u.expect("golub_reinsch always returns V when asked"),
                s,
                v: Some(v),
            }
        };
        svd.record_health(m, n, pathrep_obs::work::thread_tally("svd").since(wk0));
        Ok(svd)
    }

    /// Computes the singular values and **left** singular vectors only.
    ///
    /// `U` and `s` are bit-identical to [`Svd::compute`]'s — the right-hand
    /// accumulation and the `V`-side plane rotations never feed back into
    /// the `U`/`s` arithmetic, so skipping them changes nothing except the
    /// cost. Subset selection (Algorithm 2) pivots on `U` and reads the
    /// spectrum but never touches `V`, which makes this the hot-path entry
    /// point: for a tall `m`×`n` input it skips `O(n³)` accumulation flops
    /// plus the `V` share of every QR-iteration rotation sweep.
    ///
    /// [`Svd::v`] panics and [`Svd::reconstruct`] /
    /// [`Svd::pseudo_inverse`] return an error on the result.
    ///
    /// # Errors
    ///
    /// Same as [`Svd::compute`].
    pub fn compute_left(a: &Matrix) -> Result<Self> {
        let _span = pathrep_obs::span!("svd");
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        pathrep_obs::counter_add("linalg.svd.calls", 1);
        let wk0 = pathrep_obs::work::thread_tally("svd");
        let svd = if m >= n {
            let (u, s, _) = golub_reinsch(a, false)?;
            Svd { u, s, v: None }
        } else {
            // Wide input: A's left vectors are the transpose's right
            // vectors, so nothing can be skipped — compute and drop.
            let (v, s, u) = golub_reinsch(&a.transpose(), true)?;
            let _ = v;
            Svd {
                u: u.expect("golub_reinsch always returns V when asked"),
                s,
                v: None,
            }
        };
        svd.record_health(m, n, pathrep_obs::work::thread_tally("svd").since(wk0));
        Ok(svd)
    }

    /// Appends a `linalg/svd` numerical-health ledger record: the
    /// condition-number estimate `s_max/s_min`, the head/tail split of the
    /// singular-value energy, the leading spectrum values and this
    /// invocation's model-based work (flops/bytes/intensity — all
    /// deterministic, never wall-time-derived). No-op unless
    /// `PATHREP_OBS_LEDGER` is set.
    fn record_health(&self, m: usize, n: usize, work: pathrep_obs::work::WorkTally) {
        if !pathrep_obs::ledger::collecting() {
            return;
        }
        let smax = self.s.first().copied().unwrap_or(0.0);
        let smin = self.s.last().copied().unwrap_or(0.0);
        let total: f64 = self.s.iter().sum();
        // Head = leading 8 values: enough to see spectrum decay without
        // storing hundreds of entries per factorization.
        const HEAD: usize = 8;
        let head: f64 = self.s.iter().take(HEAD).sum();
        let head_frac = if total > 0.0 { head / total } else { 0.0 };
        pathrep_obs::ledger::record("linalg", "svd", |f| {
            f.int("rows", m as u64)
                .int("cols", n as u64)
                .num("smax", smax)
                .num("smin", smin)
                .num("cond", if smin > 0.0 { smax / smin } else { f64::INFINITY })
                .num("head_energy", head_frac)
                .num("tail_energy", 1.0 - head_frac)
                .nums("spectrum_head", &self.s[..self.s.len().min(HEAD * 2)])
                .int("work_flops", work.flops)
                .int("work_bytes", work.bytes)
                .num("work_intensity", work.intensity());
        });
    }

    /// Left singular vectors (`m` × `k`).
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// Singular values, non-negative and non-increasing.
    pub fn singular_values(&self) -> &[f64] {
        &self.s
    }

    /// Right singular vectors (`n` × `k`).
    ///
    /// # Panics
    ///
    /// Panics if the decomposition was built by [`Svd::compute_left`],
    /// which skips the right-hand side.
    pub fn v(&self) -> &Matrix {
        self.v
            .as_ref()
            .expect("right singular vectors were not computed (use Svd::compute)")
    }

    fn v_checked(&self) -> Result<&Matrix> {
        self.v.as_ref().ok_or(LinalgError::InvalidArgument {
            what: "right singular vectors were not computed (use Svd::compute)",
        })
    }

    /// Numerical rank: the number of singular values above `tol · s_max`.
    pub fn rank(&self, tol: f64) -> usize {
        let smax = self.s.first().copied().unwrap_or(0.0);
        if smax <= 0.0 {
            return 0;
        }
        self.s.iter().take_while(|&&x| x > tol * smax).count()
    }

    /// The paper's **effective rank** for energy threshold `η` (Section 4.2):
    /// the smallest `k` with `Σ_{i<k} s_i ≥ (1 − η)·Σ_i s_i`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] unless `0 ≤ η < 1`.
    pub fn effective_rank(&self, eta: f64) -> Result<usize> {
        if !(0.0..1.0).contains(&eta) {
            return Err(LinalgError::InvalidArgument {
                what: "effective-rank threshold eta must lie in [0, 1)",
            });
        }
        let total: f64 = self.s.iter().sum();
        if total == 0.0 {
            return Ok(0);
        }
        let target = (1.0 - eta) * total;
        let mut acc = 0.0;
        for (k, &sv) in self.s.iter().enumerate() {
            acc += sv;
            if acc >= target - 1e-15 * total {
                return Ok(k + 1);
            }
        }
        Ok(self.s.len())
    }

    /// Singular values normalized by their sum (`λ_i / Σλ`), the quantity
    /// plotted in the paper's Figure 2.
    pub fn normalized_singular_values(&self) -> Vec<f64> {
        let total: f64 = self.s.iter().sum();
        if total == 0.0 {
            return vec![0.0; self.s.len()];
        }
        self.s.iter().map(|&x| x / total).collect()
    }

    /// Rebuilds `U·diag(s)·Vᵀ`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidArgument`] for a [`Svd::compute_left`]
    /// decomposition (no `V`); otherwise mirrors [`Matrix::matmul`].
    pub fn reconstruct(&self) -> Result<Matrix> {
        let v = self.v_checked()?;
        let k = self.s.len();
        let mut us = self.u.clone();
        for j in 0..k {
            for i in 0..us.nrows() {
                us[(i, j)] *= self.s[j];
            }
        }
        us.matmul(&v.transpose())
    }

    /// Moore–Penrose pseudo-inverse with relative cutoff `tol` (singular
    /// values below `tol · s_max` are treated as zero).
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidArgument`] for a [`Svd::compute_left`]
    /// decomposition (no `V`); otherwise mirrors [`Matrix::matmul`].
    pub fn pseudo_inverse(&self, tol: f64) -> Result<Matrix> {
        let k = self.s.len();
        let smax = self.s.first().copied().unwrap_or(0.0);
        let mut vs = self.v_checked()?.clone();
        for j in 0..k {
            let inv = if smax > 0.0 && self.s[j] > tol * smax {
                1.0 / self.s[j]
            } else {
                0.0
            };
            for i in 0..vs.nrows() {
                vs[(i, j)] *= inv;
            }
        }
        vs.matmul(&self.u.transpose())
    }
}

#[inline]
fn same_sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Shared shape of the Golub–Reinsch Householder/accumulation updates: for
/// every column `j` in `j0..j1` of the row-major `data` (row stride
/// `stride`) forms `s_j = Σ_k wvec[k] · data[(w0+k, j)]`, maps it through
/// `finish`, and adds `finish(s_j) · uvec[k]` to rows `u0..u0+uvec.len()`.
///
/// Runs as two row-major sweeps, parallel over disjoint column ranges.
/// Per column the accumulation order (rows ascending) matches the classic
/// per-column loops exactly, so results are bit-identical at every thread
/// count; workers share only the read-only gathered vectors.
fn two_pass_col_update(
    data: &mut [f64],
    stride: usize,
    j0: usize,
    j1: usize,
    w0: usize,
    wvec: &[f64],
    u0: usize,
    uvec: &[f64],
    finish: impl Fn(f64) -> f64 + Sync,
) {
    if j0 >= j1 {
        return;
    }
    let width = j1 - j0;
    {
        let (wu, wl, ul) = (width as u64, wvec.len() as u64, uvec.len() as u64);
        pathrep_obs::work::record(
            "svd",
            wu * (2 * wl + 2 * ul + 1),
            8 * wu * (wl + 2 * ul),
            wu * (wl + ul),
        );
    }
    let mut s = vec![0.0_f64; width];
    // Gather pass: workers own disjoint chunks of `s` and read `data`
    // through a shared borrow — safe slices throughout, so the stride-1
    // inner loops stay vectorizable (a shared raw-pointer view here would
    // force the compiler to assume `s` aliases `data`).
    {
        let data_ro: &[f64] = data;
        // ~2 flops per (row, column) touch; keep ≥ 2^14 flops per worker.
        let min_cols = (1 << 14) / (2 * wvec.len().max(1)) + 1;
        pathrep_par::for_each_unit_chunk_mut(&mut s, 1, min_cols, |first, schunk| {
            let len = schunk.len();
            for (dk, &wk) in wvec.iter().enumerate() {
                let row = (w0 + dk) * stride + j0 + first;
                for (sj, &x) in schunk.iter_mut().zip(&data_ro[row..row + len]) {
                    *sj += wk * x;
                }
            }
        });
    }
    for sj in s.iter_mut() {
        *sj = finish(*sj);
    }
    // Update pass: each target row is written wholly by one worker, reading
    // the now-frozen `s`; per element it is the same single fused update as
    // the column-partitioned original, so results are bit-identical.
    let rows = &mut data[u0 * stride..(u0 + uvec.len()) * stride];
    let min_rows = (1 << 14) / (2 * width) + 1;
    pathrep_par::for_each_unit_chunk_mut(rows, stride, min_rows, |first, block| {
        for (dk, row) in block.chunks_exact_mut(stride).enumerate() {
            let uk = uvec[first + dk];
            for (&sj, x) in s.iter().zip(&mut row[j0..j1]) {
                *x += sj * uk;
            }
        }
    });
}

/// One plane rotation `(x, z) ← (x·c + z·s, z·c − x·s)` on columns `jx`
/// and `jz`: `(jx, jz, c, s)`.
type ColRotation = (usize, usize, f64, f64);

/// Applies a sweep's worth of plane rotations to every row of the
/// row-major `data` in one pass, parallel over row blocks.
///
/// Rotations within a sweep only interact through shared columns, and both
/// the rotation-by-rotation original and this per-row batch apply them in
/// the same list order to every element — so the arithmetic per element is
/// identical bit for bit. Batching matters because each rotation touches
/// just two elements per row: applied one by one, a sweep streams the
/// whole matrix from memory once *per rotation*; batched, once per sweep.
fn rotate_cols_batch(data: &mut [f64], stride: usize, rots: &[ColRotation]) {
    if rots.is_empty() {
        return;
    }
    {
        let rows = (data.len() / stride.max(1)) as u64;
        let nr = rots.len() as u64;
        pathrep_obs::work::record("svd", 6 * nr * rows, 32 * nr * rows, 2 * nr * rows);
    }
    // ~6 flops per (row, rotation) pair; keep ≥ 2^14 flops per worker.
    let min_rows = (1 << 14) / (6 * rots.len()) + 1;
    // Row-block size: consecutive rotations share a column, so applying
    // them one row at a time is a serial dependency chain. A block of rows
    // keeps ~16 independent chains in flight per rotation (pipelined FP)
    // while the block stays cache-resident across the whole sweep.
    let block_rows = 16 * stride;
    pathrep_par::for_each_unit_chunk_mut(data, stride, min_rows, |_, chunk| {
        for block in chunk.chunks_mut(block_rows) {
            for &(jx, jz, c, s) in rots {
                for row in block.chunks_exact_mut(stride) {
                    let x = row[jx];
                    let z = row[jz];
                    row[jx] = x * c + z * s;
                    row[jz] = z * c - x * s;
                }
            }
        }
    });
}

/// Golub–Reinsch SVD for `m ≥ n`: Householder bidiagonalization followed by
/// implicit-shift QR on the bidiagonal form. Returns `(U, s, V)` with `U`
/// `m`×`n`, `s` of length `n`, `V` `n`×`n` (`None` when `want_v` is false),
/// sorted by decreasing singular value with non-negative values.
///
/// `V` is write-only throughout: its accumulation and rotations never feed
/// the `U`/`w`/`rv1` recurrences, so `want_v = false` yields bit-identical
/// `U` and `s` while skipping all right-hand work.
#[allow(clippy::needless_range_loop)]
fn golub_reinsch(a_in: &Matrix, want_v: bool) -> Result<(Matrix, Vec<f64>, Option<Matrix>)> {
    let (m, n) = a_in.shape();
    debug_assert!(m >= n);
    let mut a = a_in.clone();
    let mut w = vec![0.0_f64; n];
    let mut v = if want_v {
        Some(Matrix::zeros(n, n))
    } else {
        None
    };
    let mut rv1 = vec![0.0_f64; n];

    let (mut g, mut scale, mut anorm) = (0.0_f64, 0.0_f64, 0.0_f64);

    // --- Householder reduction to bidiagonal form ---
    for i in 0..n {
        let l = i + 1;
        rv1[i] = scale * g;
        g = 0.0;
        let mut s;
        scale = 0.0;
        if i < m {
            for k in i..m {
                scale += a[(k, i)].abs();
            }
            if scale != 0.0 {
                s = 0.0;
                for k in i..m {
                    a[(k, i)] /= scale;
                    s += a[(k, i)] * a[(k, i)];
                }
                let f = a[(i, i)];
                g = -same_sign(s.sqrt(), f);
                let h = f * g - s;
                a[(i, i)] = f - g;
                // s2_j = Σ_k a[(k,i)]·a[(k,j)], then a[(k,j)] += (s2_j/h)·a[(k,i)];
                // the trailing columns never touch column i, so one gather of
                // it serves both passes.
                let vcol: Vec<f64> = (i..m).map(|k| a[(k, i)]).collect();
                two_pass_col_update(a.as_mut_slice(), n, l, n, i, &vcol, i, &vcol, |s2| s2 / h);
                for k in i..m {
                    a[(k, i)] *= scale;
                }
            }
        }
        w[i] = scale * g;
        g = 0.0;
        scale = 0.0;
        if i < m && i != n - 1 {
            for k in l..n {
                scale += a[(i, k)].abs();
            }
            if scale != 0.0 {
                s = 0.0;
                for k in l..n {
                    a[(i, k)] /= scale;
                    s += a[(i, k)] * a[(i, k)];
                }
                let f = a[(i, l)];
                g = -same_sign(s.sqrt(), f);
                let h = f * g - s;
                a[(i, l)] = f - g;
                for k in l..n {
                    rv1[k] = a[(i, k)] / h;
                }
                // Row-space update: every row j ≥ l is independent (reads
                // only the fixed row i and rv1), so blocks of rows go to
                // different workers with bit-identical results.
                if l < m {
                    let panel = ((m - l) * (n - l)) as u64;
                    pathrep_obs::work::record("svd", 4 * panel, 16 * panel, panel);
                    let (head, tail) = a.as_mut_slice().split_at_mut(l * n);
                    let row_i = &head[i * n..i * n + n];
                    let min_rows = (1 << 14) / (4 * (n - l).max(1)) + 1;
                    // Each row's dot is a serial FP-add chain; jamming four
                    // rows together runs four independent chains in flight
                    // without touching any row's own summation order.
                    pathrep_par::for_each_unit_chunk_mut(tail, n, min_rows, |_, block| {
                        let mut quads = block.chunks_exact_mut(4 * n);
                        for quad in &mut quads {
                            let (r0, rest) = quad.split_at_mut(n);
                            let (r1, rest) = rest.split_at_mut(n);
                            let (r2, r3) = rest.split_at_mut(n);
                            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
                            for k in l..n {
                                s0 += r0[k] * row_i[k];
                                s1 += r1[k] * row_i[k];
                                s2 += r2[k] * row_i[k];
                                s3 += r3[k] * row_i[k];
                            }
                            for k in l..n {
                                r0[k] += s0 * rv1[k];
                                r1[k] += s1 * rv1[k];
                                r2[k] += s2 * rv1[k];
                                r3[k] += s3 * rv1[k];
                            }
                        }
                        for row in quads.into_remainder().chunks_exact_mut(n) {
                            let mut s2 = 0.0;
                            for k in l..n {
                                s2 += row[k] * row_i[k];
                            }
                            for k in l..n {
                                row[k] += s2 * rv1[k];
                            }
                        }
                    });
                }
                for k in l..n {
                    a[(i, k)] *= scale;
                }
            }
        }
        anorm = anorm.max(w[i].abs() + rv1[i].abs());
    }

    // --- Accumulation of right-hand transformations ---
    if let Some(v) = v.as_mut() {
        let mut l = n; // sentinel; set properly on the first pass below
        for i in (0..n).rev() {
            if i < n - 1 {
                if g != 0.0 {
                    for j in l..n {
                        // Double division avoids possible underflow.
                        v[(j, i)] = (a[(i, j)] / a[(i, l)]) / g;
                    }
                    // s_j = Σ_k a[(i,k)]·v[(k,j)], then v[(k,j)] += s_j·v[(k,i)];
                    // column i of v is never written here, so gather it once.
                    let vcol: Vec<f64> = (l..n).map(|k| v[(k, i)]).collect();
                    let arow = &a.row(i)[l..n];
                    two_pass_col_update(v.as_mut_slice(), n, l, n, l, arow, l, &vcol, |s| s);
                }
                for j in l..n {
                    v[(i, j)] = 0.0;
                    v[(j, i)] = 0.0;
                }
            }
            v[(i, i)] = 1.0;
            g = rv1[i];
            l = i;
        }
    }

    // --- Accumulation of left-hand transformations ---
    for i in (0..n.min(m)).rev() {
        let l = i + 1;
        g = w[i];
        for j in l..n {
            a[(i, j)] = 0.0;
        }
        if g != 0.0 {
            g = 1.0 / g;
            // s_j = Σ_{k≥l} a[(k,i)]·a[(k,j)], then
            // a[(k,j)] += (s_j/a_ii)·g·a[(k,i)] for k ≥ i; column i is
            // read-only during the update, so gather it once.
            let acol: Vec<f64> = (i..m).map(|k| a[(k, i)]).collect();
            let a_ii = a[(i, i)];
            two_pass_col_update(a.as_mut_slice(), n, l, n, l, &acol[1..], i, &acol, |s| {
                (s / a_ii) * g
            });
            for j in i..m {
                a[(j, i)] *= g;
            }
        } else {
            for j in i..m {
                a[(j, i)] = 0.0;
            }
        }
        a[(i, i)] += 1.0;
    }

    // --- Diagonalization of the bidiagonal form ---
    let eps = f64::EPSILON;
    let mut qr_sweeps: u64 = 0;
    for k in (0..n).rev() {
        let mut converged = false;
        for sweep in 0..=MAX_SWEEPS {
            if sweep == MAX_SWEEPS {
                return Err(LinalgError::NoConvergence {
                    routine: "svd",
                    iterations: MAX_SWEEPS,
                });
            }
            // Test for splitting: find the largest l ≤ k with negligible
            // rv1[l]; note rv1[0] is always zero so l = 0 terminates.
            let mut flag = true;
            let mut l = k;
            loop {
                if rv1[l].abs() <= eps * anorm {
                    flag = false;
                    break;
                }
                if w[l - 1].abs() <= eps * anorm {
                    break;
                }
                l -= 1;
            }
            if flag {
                // Cancellation of rv1[l] when w[l-1] is negligible. The
                // c/s recurrence reads only rv1/w scalars, never the
                // matrix, so the rotations are collected first and applied
                // to `a` in one batched pass.
                let mut c = 0.0;
                let mut s = 1.0;
                let nm = l - 1;
                let mut rots: Vec<ColRotation> = Vec::with_capacity(k + 1 - l);
                for i in l..=k {
                    let f = s * rv1[i];
                    rv1[i] *= c;
                    if f.abs() <= eps * anorm {
                        break;
                    }
                    g = w[i];
                    let mut h = pythag(f, g);
                    w[i] = h;
                    h = 1.0 / h;
                    c = g * h;
                    s = -f * h;
                    rots.push((nm, i, c, s));
                }
                rotate_cols_batch(a.as_mut_slice(), n, &rots);
            }
            let z = w[k];
            if l == k {
                // Converged; enforce non-negative singular value (the
                // compensating sign flip lands on V, so U is untouched
                // and a V-less run stays bit-identical on U and s).
                if z < 0.0 {
                    w[k] = -z;
                    if let Some(v) = v.as_mut() {
                        for j in 0..n {
                            v[(j, k)] = -v[(j, k)];
                        }
                    }
                }
                converged = true;
                break;
            }
            // Shift from the bottom 2×2 minor.
            qr_sweeps += 1;
            let mut x = w[l];
            let nm = k - 1;
            let mut y = w[nm];
            g = rv1[nm];
            let mut h = rv1[k];
            let mut f = ((y - z) * (y + z) + (g - h) * (g + h)) / (2.0 * h * y);
            g = pythag(f, 1.0);
            f = ((x - z) * (x + z) + h * ((y / (f + same_sign(g, f))) - h)) / x;
            // Next QR transformation. As above, the Givens recurrence is
            // pure scalar work on w/rv1 — collect the V- and U-side
            // rotations and apply each side as one batched pass.
            let mut c = 1.0;
            let mut s = 1.0;
            let mut rots_v: Vec<ColRotation> = Vec::with_capacity(nm + 1 - l);
            let mut rots_a: Vec<ColRotation> = Vec::with_capacity(nm + 1 - l);
            for j in l..=nm {
                let i = j + 1;
                g = rv1[i];
                y = w[i];
                h = s * g;
                g *= c;
                let mut zz = pythag(f, h);
                rv1[j] = zz;
                c = f / zz;
                s = h / zz;
                f = x * c + g * s;
                g = g * c - x * s;
                h = y * s;
                y *= c;
                rots_v.push((j, i, c, s));
                zz = pythag(f, h);
                w[j] = zz;
                if zz != 0.0 {
                    let inv = 1.0 / zz;
                    c = f * inv;
                    s = h * inv;
                }
                f = c * g + s * y;
                x = c * y - s * g;
                rots_a.push((j, i, c, s));
            }
            if let Some(v) = v.as_mut() {
                rotate_cols_batch(v.as_mut_slice(), n, &rots_v);
            }
            rotate_cols_batch(a.as_mut_slice(), n, &rots_a);
            rv1[l] = 0.0;
            rv1[k] = f;
            w[k] = x;
        }
        debug_assert!(converged);
    }

    pathrep_obs::counter_add("linalg.svd.qr_sweeps", qr_sweeps);

    // --- Sort by decreasing singular value (a NaN — possible only from
    // non-finite input — deterministically sorts last) ---
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| crate::vecops::cmp_nan_smallest(w[j], w[i]));
    let s_sorted: Vec<f64> = order.iter().map(|&i| w[i]).collect();
    let u_sorted = a.select_cols(&order);
    let v_sorted = v.map(|v| v.select_cols(&order));
    Ok((u_sorted, s_sorted, v_sorted))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_svd(a: &Matrix, tol: f64) {
        let svd = Svd::compute(a).unwrap();
        let k = a.nrows().min(a.ncols());
        assert_eq!(svd.singular_values().len(), k);
        // Reconstruction.
        assert!(
            svd.reconstruct().unwrap().approx_eq(a, tol),
            "reconstruction failed"
        );
        // Orthonormality of both factors.
        let utu = svd.u().transpose().matmul(svd.u()).unwrap();
        assert!(utu.approx_eq(&Matrix::identity(k), tol), "U not orthonormal");
        let vtv = svd.v().transpose().matmul(svd.v()).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(k), tol), "V not orthonormal");
        // Ordering and non-negativity.
        let s = svd.singular_values();
        for i in 0..k {
            assert!(s[i] >= 0.0);
            if i > 0 {
                assert!(s[i] <= s[i - 1] + 1e-12);
            }
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let svd = Svd::compute(&a).unwrap();
        let s = svd.singular_values();
        assert!((s[0] - 3.0).abs() < 1e-12);
        assert!((s[1] - 2.0).abs() < 1e-12);
        assert!((s[2] - 1.0).abs() < 1e-12);
        check_svd(&a, 1e-12);
    }

    #[test]
    fn tall_matrix() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0],
            &[3.0, 4.0],
            &[5.0, 6.0],
            &[7.0, 8.0],
        ])
        .unwrap();
        check_svd(&a, 1e-11);
    }

    #[test]
    fn wide_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]]).unwrap();
        check_svd(&a, 1e-11);
    }

    #[test]
    fn rank_deficient() {
        // Rank 1: every row is a multiple of the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0], &[3.0, 6.0, 9.0]])
            .unwrap();
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        check_svd(&a, 1e-11);
    }

    #[test]
    fn known_singular_values() {
        // A = [[3, 0], [4, 5]] has singular values sqrt(45/2 ± ...) — check
        // against the eigenvalues of AᵀA: s1·s2 = |det| = 15, s1²+s2² = 50.
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 5.0]]).unwrap();
        let svd = Svd::compute(&a).unwrap();
        let s = svd.singular_values();
        assert!((s[0] * s[1] - 15.0).abs() < 1e-10);
        assert!((s[0] * s[0] + s[1] * s[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn random_matrix_properties() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Matrix::from_fn(40, 17, |_, _| rng.gen_range(-1.0..1.0));
        check_svd(&a, 1e-9);
        let b = Matrix::from_fn(17, 40, |_, _| rng.gen_range(-1.0..1.0));
        check_svd(&b, 1e-9);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(3, 2);
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-12), 0);
        assert!(svd.singular_values().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn effective_rank_low_rank_plus_noise() {
        // Two dominant directions plus faint noise: effective rank at 5%
        // should be 2 while the exact rank is full.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut a = Matrix::from_fn(30, 10, |_, _| 1e-4 * rng.gen_range(-1.0..1.0));
        for i in 0..30 {
            let t = i as f64;
            for j in 0..10 {
                a[(i, j)] += (t * 0.1).sin() * (j as f64 + 1.0) + (t * 0.3).cos() * (j as f64);
            }
        }
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-12), 10);
        let er = svd.effective_rank(0.05).unwrap();
        assert!(er <= 3, "effective rank {er} should be tiny");
    }

    #[test]
    fn effective_rank_rejects_bad_eta() {
        let a = Matrix::identity(2);
        let svd = Svd::compute(&a).unwrap();
        assert!(svd.effective_rank(1.0).is_err());
        assert!(svd.effective_rank(-0.1).is_err());
        assert_eq!(svd.effective_rank(0.0).unwrap(), 2);
    }

    #[test]
    fn normalized_values_sum_to_one() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.5, 3.0], &[1.0, 1.0]]).unwrap();
        let svd = Svd::compute(&a).unwrap();
        let nv = svd.normalized_singular_values();
        let sum: f64 = nv.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pseudo_inverse_of_full_rank_is_inverse() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let pinv = Svd::compute(&a).unwrap().pseudo_inverse(1e-12).unwrap();
        assert!(a.matmul(&pinv).unwrap().approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn pseudo_inverse_satisfies_penrose_conditions() {
        // Rank-deficient example.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[0.0, 0.0]]).unwrap();
        let p = Svd::compute(&a).unwrap().pseudo_inverse(1e-12).unwrap();
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!(apa.approx_eq(&a, 1e-10), "A P A = A violated");
        let pap = p.matmul(&a).unwrap().matmul(&p).unwrap();
        assert!(pap.approx_eq(&p, 1e-10), "P A P = P violated");
        let ap = a.matmul(&p).unwrap();
        assert!(ap.approx_eq(&ap.transpose(), 1e-10), "(AP)ᵀ = AP violated");
        let pa = p.matmul(&a).unwrap();
        assert!(pa.approx_eq(&pa.transpose(), 1e-10), "(PA)ᵀ = PA violated");
    }

    #[test]
    fn compute_left_matches_full_bit_for_bit() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for &(m, n) in &[(40usize, 17usize), (17, 40), (25, 25)] {
            let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
            let full = Svd::compute(&a).unwrap();
            let left = Svd::compute_left(&a).unwrap();
            for (x, y) in full
                .singular_values()
                .iter()
                .zip(left.singular_values())
            {
                assert_eq!(x.to_bits(), y.to_bits(), "singular values diverged");
            }
            assert_eq!(full.u().shape(), left.u().shape());
            for i in 0..full.u().nrows() {
                for j in 0..full.u().ncols() {
                    assert_eq!(
                        full.u()[(i, j)].to_bits(),
                        left.u()[(i, j)].to_bits(),
                        "U diverged at ({i}, {j}) for {m}x{n}"
                    );
                }
            }
        }
    }

    #[test]
    fn compute_left_has_no_right_vectors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let left = Svd::compute_left(&a).unwrap();
        assert!(matches!(
            left.reconstruct(),
            Err(LinalgError::InvalidArgument { .. })
        ));
        assert!(matches!(
            left.pseudo_inverse(1e-12),
            Err(LinalgError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn single_column() {
        let a = Matrix::from_rows(&[&[3.0], &[4.0]]).unwrap();
        let svd = Svd::compute(&a).unwrap();
        assert!((svd.singular_values()[0] - 5.0).abs() < 1e-12);
        check_svd(&a, 1e-12);
    }

    #[test]
    fn single_row() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        let svd = Svd::compute(&a).unwrap();
        assert!((svd.singular_values()[0] - 5.0).abs() < 1e-12);
        check_svd(&a, 1e-12);
    }
}
