//! Cholesky factorization of symmetric positive-definite matrices.

use crate::{LinalgError, Matrix, Result};

/// Cholesky factorization `A = L·Lᵀ` with `L` lower triangular.
///
/// Used for covariance factorizations (Monte-Carlo sampling of correlated
/// variation) and for solving the normal equations of small refit problems.
///
/// # Example
///
/// ```
/// use pathrep_linalg::{Matrix, cholesky::Cholesky};
///
/// # fn main() -> Result<(), pathrep_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let ch = Cholesky::compute(&a)?;
/// let x = ch.solve(&[8.0, 7.0])?;
/// let b = a.matvec(&x)?;
/// assert!((b[0] - 8.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix. Only the lower triangle
    /// of `a` is read.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Empty`] if `a` has zero size.
    /// * [`LinalgError::NotPositiveDefinite`] if a non-positive pivot occurs.
    pub fn compute(a: &Matrix) -> Result<Self> {
        if a.nrows() == 0 {
            return Err(LinalgError::Empty);
        }
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let _span = pathrep_obs::span!("cholesky");
        let n = a.nrows();
        {
            // Classic i/j/k factorization: n(n+1)(n+2)/3 flops over the
            // lower triangle, reading A's triangle and writing L's.
            let nu = n as u64;
            pathrep_obs::work::record(
                "cholesky",
                nu * (nu + 1) * (nu + 2) / 3,
                8 * nu * (nu + 1),
                nu * (nu + 1),
            );
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { minor: i });
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factors `a + jitter·I`, retrying with ×10 larger jitter up to
    /// `attempts` times. Useful for covariance matrices that are positive
    /// semi-definite up to rounding.
    ///
    /// # Errors
    ///
    /// Returns the final [`LinalgError::NotPositiveDefinite`] when all
    /// attempts fail, and shape errors as [`Cholesky::compute`] does.
    pub fn compute_with_jitter(a: &Matrix, jitter: f64, attempts: usize) -> Result<Self> {
        let mut eps = jitter;
        let mut last = Self::compute(a);
        for _ in 0..attempts {
            if last.is_ok() {
                return last;
            }
            let mut aj = a.clone();
            for i in 0..a.nrows() {
                aj[(i, i)] += eps;
            }
            last = Self::compute(&aj);
            eps *= 10.0;
        }
        last
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward then backward substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a wrong-length right-hand
    /// side.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.nrows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        {
            // Forward + backward substitution: n² flops each pass over
            // the triangle of L, plus the right-hand-side vector.
            let nu = n as u64;
            pathrep_obs::work::record(
                "cholesky",
                2 * nu * nu,
                8 * (nu * (nu + 1) + 2 * nu),
                nu * (nu + 1) + 2 * nu,
            );
        }
        let mut y = b.to_vec();
        // L y = b
        for i in 0..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `A X = B` column-by-column.
    ///
    /// Columns are substituted four at a time: each column's own
    /// subtraction order is untouched (results are bit-identical to the
    /// one-column [`Cholesky::solve`]), but the four independent
    /// recurrence chains pipeline instead of serializing on FP-add
    /// latency, and every `L` element is loaded once per panel instead of
    /// once per column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `B` has the wrong row
    /// count.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.l.nrows();
        if b.nrows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut x = Matrix::zeros(n, b.ncols());
        {
            // Panel substitutions do the same per-column model work as
            // the scalar solve; remainder columns record via `solve`.
            let (nu, panels) = (n as u64, (b.ncols() / 4) as u64);
            pathrep_obs::work::record(
                "cholesky",
                panels * 4 * 2 * nu * nu,
                panels * 8 * (nu * (nu + 1) + 8 * nu),
                panels * (nu * (nu + 1) + 8 * nu),
            );
        }
        let mut j = 0;
        while j + 4 <= b.ncols() {
            // Row-major n×4 panel of the four columns.
            let mut y = vec![0.0_f64; n * 4];
            for i in 0..n {
                for c in 0..4 {
                    y[i * 4 + c] = b[(i, j + c)];
                }
            }
            // L y = b
            for i in 0..n {
                let li = self.l.row(i);
                let (head, tail) = y.split_at_mut(i * 4);
                let yi = &mut tail[..4];
                for (k, yk) in head.chunks_exact(4).enumerate() {
                    let lik = li[k];
                    for c in 0..4 {
                        yi[c] -= lik * yk[c];
                    }
                }
                let d = li[i];
                for v in yi.iter_mut() {
                    *v /= d;
                }
            }
            // Lᵀ x = y
            for i in (0..n).rev() {
                let (head, tail) = y.split_at_mut((i + 1) * 4);
                let yi = &mut head[i * 4..];
                for (dk, yk) in tail.chunks_exact(4).enumerate() {
                    let lki = self.l[(i + 1 + dk, i)];
                    for c in 0..4 {
                        yi[c] -= lki * yk[c];
                    }
                }
                let d = self.l[(i, i)];
                for v in yi.iter_mut() {
                    *v /= d;
                }
            }
            for i in 0..n {
                for c in 0..4 {
                    x[(i, j + c)] = y[i * 4 + c];
                }
            }
            j += 4;
        }
        for j in j..b.ncols() {
            x.set_col(j, &self.solve(&b.col(j))?);
        }
        Ok(x)
    }

    /// Computes `L v` (for sampling: turns iid normals into correlated ones).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a wrong-length input.
    pub fn l_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        self.l.matvec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_reconstructs() {
        let a = Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap();
        let ch = Cholesky::compute(&a).unwrap();
        let back = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
        // Known factor of this classic example.
        assert!((ch.l()[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((ch.l()[(1, 0)] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matches_direct() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let ch = Cholesky::compute(&a).unwrap();
        let x = ch.solve(&[3.0, 3.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::compute(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite { .. }
        ));
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 PSD matrix: plain Cholesky fails, jitter succeeds.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(Cholesky::compute(&a).is_err());
        let ch = Cholesky::compute_with_jitter(&a, 1e-12, 8).unwrap();
        let back = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-5));
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            Cholesky::compute(&Matrix::zeros(2, 3)).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
    }

    #[test]
    fn solve_matrix_round_trip() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let ch = Cholesky::compute(&a).unwrap();
        let x = ch.solve_matrix(&b).unwrap();
        assert!(a.matmul(&x).unwrap().approx_eq(&b, 1e-12));
    }

    #[test]
    fn solve_matrix_panel_matches_per_column_solve_bitwise() {
        // The 4-wide panel substitution must reproduce the scalar solve
        // exactly — both full panels and the ragged remainder columns.
        let n = 13;
        let mut a = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 5) as f64 * 0.21).sin() * 0.4);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let ch = Cholesky::compute(&a).unwrap();
        let b = Matrix::from_fn(n, 7, |i, j| ((i + 2 * j) as f64 * 0.63).cos());
        let x = ch.solve_matrix(&b).unwrap();
        for j in 0..b.ncols() {
            let col = ch.solve(&b.col(j)).unwrap();
            for i in 0..n {
                assert_eq!(
                    x[(i, j)].to_bits(),
                    col[i].to_bits(),
                    "panel solve diverged at ({i}, {j})"
                );
            }
        }
    }
}
