//! LU factorization with partial pivoting, and derived solvers.

use crate::{LinalgError, Matrix, Result};

/// LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// # Example
///
/// ```
/// use pathrep_linalg::{Matrix, lu::Lu};
///
/// # fn main() -> Result<(), pathrep_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])?;
/// let lu = Lu::compute(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `piv[k]` is the original row stored at position `k`.
    piv: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used by `det`.
    sign: f64,
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Empty`] if `a` has zero size.
    /// * [`LinalgError::Singular`] if a zero pivot is met (exact singularity);
    ///   near-singularity is reported by [`Lu::solve`] producing huge values,
    ///   use [`crate::svd`] for rank decisions.
    pub fn compute(a: &Matrix) -> Result<Self> {
        if a.nrows() == 0 || a.ncols() == 0 {
            return Err(LinalgError::Empty);
        }
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Find the pivot row.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max == 0.0 {
                return Err(LinalgError::Singular);
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                piv.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let u = lu[(k, j)];
                        lu[(i, j)] -= m * u;
                    }
                }
            }
        }
        Ok(Lu { lu, piv, sign })
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `b.len()` differs from the
    /// matrix order.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.nrows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply the permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column-by-column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `B` has the wrong row
    /// count.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.lu.nrows();
        if b.nrows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut x = Matrix::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            let col = self.solve(&b.col(j))?;
            x.set_col(j, &col);
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.nrows();
        (0..n).fold(self.sign, |acc, i| acc * self.lu[(i, i)])
    }

    /// Inverse of the factored matrix.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (cannot occur for a successfully factored
    /// matrix of matching size).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.lu.nrows()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]])
            .unwrap();
        let lu = Lu::compute(&a).unwrap();
        let x = lu.solve(&[5.0, -2.0, 9.0]).unwrap();
        let b = a.matvec(&x).unwrap();
        assert!((b[0] - 5.0).abs() < 1e-12);
        assert!((b[1] + 2.0).abs() < 1e-12);
        assert!((b[2] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn det_of_triangular() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]).unwrap();
        let lu = Lu::compute(&a).unwrap();
        assert!((lu.det() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn det_sign_tracks_pivoting() {
        // This matrix forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::compute(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_round_trip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = Lu::compute(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn singular_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(Lu::compute(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::compute(&a).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
    }

    #[test]
    fn solve_checks_rhs_len() {
        let a = Matrix::identity(3);
        let lu = Lu::compute(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn solve_matrix_matches_columnwise() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[9.0, 1.0], &[8.0, 0.0]]).unwrap();
        let lu = Lu::compute(&a).unwrap();
        let x = lu.solve_matrix(&b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-12));
    }
}
