//! Dense-vs-sparse parity and thread-count determinism for the kernels
//! feeding the sketched selection pipeline.
//!
//! The determinism contract says every kernel is bit-identical at any
//! `PATHREP_THREADS`, and the CSR kernels are bit-identical to their
//! dense expansions (same accumulation order, explicit zeros skipped).
//! These tests pin both properties together at thread counts 1 and 4,
//! including byte identity of the numerical-health ledger the sketched
//! SVD writes — the same evidence the accuracy gate compares.

use pathrep_linalg::sketch::{sketched_svd, SketchConfig};
use pathrep_linalg::sparse::SparseMatrix;
use pathrep_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// `set_threads` and the ledger buffer are process-global; serialize the
/// tests in this binary.
static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// A seeded random matrix with `fill` expected nonzero density, returned
/// as the dense original and its CSR compression.
fn random_pair(rows: usize, cols: usize, fill: f64, seed: u64) -> (Matrix, SparseMatrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let dense = Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen::<f64>() < fill {
            rng.gen_range(-1.0..1.0)
        } else {
            0.0
        }
    });
    let sparse = SparseMatrix::from_dense(&dense);
    (dense, sparse)
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn spmv_matches_dense_bitwise_at_one_and_four_threads() {
    let _g = lock();
    let (dense, sparse) = random_pair(120, 75, 0.15, 0x51);
    let mut rng = StdRng::seed_from_u64(0x52);
    let x: Vec<f64> = (0..75).map(|_| rng.gen_range(-2.0..2.0)).collect();

    let mut per_thread = Vec::new();
    for threads in [1, 4] {
        pathrep_par::set_threads(threads);
        let ys = sparse.matvec(&x).unwrap();
        let yd = dense.matvec(&x).unwrap();
        for (a, b) in ys.iter().zip(&yd) {
            assert_eq!(a.to_bits(), b.to_bits(), "spmv != dense at t{threads}");
        }
        per_thread.push(ys.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }
    pathrep_par::set_threads(0);
    assert_eq!(per_thread[0], per_thread[1], "spmv differs across thread counts");
}

#[test]
fn spmm_both_sides_match_dense_bitwise_at_one_and_four_threads() {
    let _g = lock();
    let (dense, sparse) = random_pair(90, 60, 0.2, 0x61);
    let right = Matrix::from_fn(60, 17, |i, j| ((i * 17 + j) as f64 * 0.37).sin());
    let left = Matrix::from_fn(13, 90, |i, j| ((i * 90 + j) as f64 * 0.29).cos());

    let mut per_thread = Vec::new();
    for threads in [1, 4] {
        pathrep_par::set_threads(threads);
        let cs = sparse.matmul_dense(&right).unwrap();
        let cd = dense.matmul(&right).unwrap();
        assert_eq!(bits(&cs), bits(&cd), "A·B != dense at t{threads}");
        let ps = sparse.premul_dense(&left).unwrap();
        let pd = left.matmul(&dense).unwrap();
        assert_eq!(bits(&ps), bits(&pd), "L·A != dense at t{threads}");
        per_thread.push((bits(&cs), bits(&ps)));
    }
    pathrep_par::set_threads(0);
    assert_eq!(per_thread[0], per_thread[1], "spmm differs across thread counts");
}

#[test]
fn sketched_svd_subspace_and_ledger_identical_across_thread_counts() {
    let _g = lock();
    let (_, sparse) = random_pair(140, 80, 0.12, 0x71);
    let config = SketchConfig {
        sketch_cols: 24,
        ..SketchConfig::default()
    };

    let mut runs = Vec::new();
    for threads in [1, 4] {
        pathrep_par::set_threads(threads);
        pathrep_obs::reset();
        pathrep_obs::ledger::set_collecting(true);
        pathrep_obs::ledger::set_run_context("sketch_parity", 7);
        let sk = sketched_svd(&sparse, &config).unwrap();
        let ledger = pathrep_obs::ledger::render_jsonl(&pathrep_obs::ledger::records());
        pathrep_obs::ledger::set_collecting(false);
        pathrep_obs::reset();
        runs.push((
            bits(sk.svd().u()),
            sk.svd()
                .singular_values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            sk.energy_capture().to_bits(),
            ledger,
        ));
    }
    pathrep_par::set_threads(0);

    let (u1, s1, e1, l1) = &runs[0];
    let (u4, s4, e4, l4) = &runs[1];
    assert_eq!(u1, u4, "sketched subspace differs across thread counts");
    assert_eq!(s1, s4, "sketched spectrum differs across thread counts");
    assert_eq!(e1, e4, "energy capture differs across thread counts");
    assert!(!l1.is_empty(), "sketched SVD must write ledger evidence");
    assert_eq!(l1, l4, "ledger render is not byte-identical across thread counts");
}
