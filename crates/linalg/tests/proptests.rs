//! Property-based tests for the linear-algebra kernels.

use pathrep_linalg::cholesky::Cholesky;
use pathrep_linalg::eig::SymmetricEig;
use pathrep_linalg::gauss;
use pathrep_linalg::lu::Lu;
use pathrep_linalg::qr::Qr;
use pathrep_linalg::svd::Svd;
use pathrep_linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a matrix with entries in [-5, 5] and shape within the bounds.
fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-5.0..5.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized to fit"))
    })
}

/// Strategy: a square matrix.
fn square_strategy(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(-5.0..5.0f64, n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data).expect("sized to fit"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(a in matrix_strategy(12, 12)) {
        prop_assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_associates_with_transpose(a in matrix_strategy(8, 6)) {
        // (A Aᵀ)ᵀ = A Aᵀ — the Gram matrix is symmetric.
        let g = a.matmul(&a.transpose()).unwrap();
        prop_assert!(g.approx_eq(&g.transpose(), 1e-10));
    }

    #[test]
    fn svd_reconstructs(a in matrix_strategy(10, 10)) {
        let svd = Svd::compute(&a).unwrap();
        let back = svd.reconstruct().unwrap();
        let scale = a.norm_max().max(1.0);
        prop_assert!(back.approx_eq(&a, 1e-9 * scale),
            "reconstruction error {:e}", back.sub(&a).unwrap().norm_max());
    }

    #[test]
    fn svd_frobenius_identity(a in matrix_strategy(10, 10)) {
        // ‖A‖_F² = Σ σᵢ².
        let svd = Svd::compute(&a).unwrap();
        let ssq: f64 = svd.singular_values().iter().map(|s| s * s).sum();
        let f2 = a.norm_fro().powi(2);
        prop_assert!((ssq - f2).abs() <= 1e-8 * f2.max(1.0));
    }

    #[test]
    fn svd_effective_rank_monotone_in_eta(a in matrix_strategy(9, 9)) {
        let svd = Svd::compute(&a).unwrap();
        let r1 = svd.effective_rank(0.01).unwrap();
        let r5 = svd.effective_rank(0.05).unwrap();
        let r20 = svd.effective_rank(0.20).unwrap();
        prop_assert!(r20 <= r5 && r5 <= r1);
        prop_assert!(r1 <= svd.singular_values().len());
    }

    #[test]
    fn qr_pivoted_reconstructs_permuted(a in matrix_strategy(10, 8)) {
        let qr = Qr::compute_pivoted(&a).unwrap();
        let ap = a.select_cols(qr.perm());
        let back = qr.q_thin().matmul(&qr.r()).unwrap();
        let scale = a.norm_max().max(1.0);
        prop_assert!(back.approx_eq(&ap, 1e-9 * scale));
    }

    #[test]
    fn qr_pivot_diagonal_nonincreasing(a in matrix_strategy(10, 8)) {
        let qr = Qr::compute_pivoted(&a).unwrap();
        let r = qr.r();
        let k = r.nrows().min(r.ncols());
        for i in 1..k {
            prop_assert!(r[(i, i)].abs() <= r[(i - 1, i - 1)].abs() * (1.0 + 1e-9) + 1e-12);
        }
    }

    #[test]
    fn qr_perm_is_permutation(a in matrix_strategy(10, 8)) {
        let qr = Qr::compute_pivoted(&a).unwrap();
        let mut seen = vec![false; a.ncols()];
        for &p in qr.perm() {
            prop_assert!(!seen[p]);
            seen[p] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn lu_solve_round_trips(a in square_strategy(8), seed in 0u64..1000) {
        // Make the matrix diagonally dominant so it is safely regular.
        let n = a.nrows();
        let mut ad = a.clone();
        for i in 0..n {
            let rowsum: f64 = (0..n).map(|j| ad[(i, j)].abs()).sum();
            ad[(i, i)] += rowsum + 1.0;
        }
        let b: Vec<f64> = (0..n).map(|i| ((seed as f64) * 0.01 + i as f64).sin()).collect();
        let lu = Lu::compute(&ad).unwrap();
        let x = lu.solve(&b).unwrap();
        let back = ad.matvec(&x).unwrap();
        for (u, v) in back.iter().zip(b.iter()) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn cholesky_matches_lu_on_spd(a in matrix_strategy(8, 5)) {
        // AᵀA + I is SPD.
        let mut g = a.transpose().matmul(&a).unwrap();
        for i in 0..g.nrows() {
            g[(i, i)] += 1.0;
        }
        let b: Vec<f64> = (0..g.nrows()).map(|i| (i as f64 + 1.0).sqrt()).collect();
        let x1 = Cholesky::compute(&g).unwrap().solve(&b).unwrap();
        let x2 = Lu::compute(&g).unwrap().solve(&b).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn eig_reconstructs_symmetric(a in square_strategy(9)) {
        let sym = a.add(&a.transpose()).unwrap().scale(0.5);
        let eig = SymmetricEig::compute(&sym).unwrap();
        let back = eig.reconstruct().unwrap();
        let scale = sym.norm_max().max(1.0);
        prop_assert!(back.approx_eq(&sym, 1e-8 * scale));
    }

    #[test]
    fn eig_values_match_trace_and_frobenius(a in square_strategy(9)) {
        let sym = a.add(&a.transpose()).unwrap().scale(0.5);
        let eig = SymmetricEig::compute(&sym).unwrap();
        let tr: f64 = eig.values().iter().sum();
        prop_assert!((tr - sym.trace()).abs() < 1e-8 * sym.norm_max().max(1.0) * sym.nrows() as f64);
        let ssq: f64 = eig.values().iter().map(|v| v * v).sum();
        let f2 = sym.norm_fro().powi(2);
        prop_assert!((ssq - f2).abs() <= 1e-7 * f2.max(1.0));
    }

    #[test]
    fn normal_quantile_round_trip(p in 0.0005..0.9995f64) {
        let x = gauss::normal_quantile(p);
        prop_assert!((gauss::normal_cdf(x) - p).abs() < 1e-6);
    }

    #[test]
    fn svd_singular_values_bound_matvec(a in matrix_strategy(8, 8), xs in proptest::collection::vec(-1.0..1.0f64, 8)) {
        // ‖A x‖ ≤ σ_max ‖x‖ for any x.
        let n = a.ncols();
        let x = &xs[..n];
        let svd = Svd::compute(&a).unwrap();
        let smax = svd.singular_values()[0];
        let ax = a.matvec(x).unwrap();
        let nax = pathrep_linalg::vecops::norm2(&ax);
        let nx = pathrep_linalg::vecops::norm2(x);
        prop_assert!(nax <= smax * nx * (1.0 + 1e-9) + 1e-12);
    }
}
