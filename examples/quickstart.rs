//! Quickstart: the paper's Figure-1 motivating example, end to end.
//!
//! Four paths merge at gate G5; because they share segments, any one of
//! them is an exact linear combination of the other three
//! (`d_p1 = d_p2 − d_p3 + d_p4`). Exact selection discovers this: it keeps
//! `rank(A) = 3` representative paths and predicts the fourth with zero
//! error.
//!
//! Run with: `cargo run --release --example quickstart`

use pathrep::circuit::cell::{CellKind, CellLibrary};
use pathrep::circuit::generator::PlacedCircuit;
use pathrep::circuit::netlist::{Netlist, Signal};
use pathrep::circuit::paths::{decompose_into_segments, Path};
use pathrep::circuit::placement::Placement;
use pathrep::core::exact::exact_select;
use pathrep::core::predictor::DEFAULT_KAPPA;
use pathrep::variation::model::VariationModel;
use pathrep::variation::sampler::VariationSampler;
use pathrep::variation::sensitivity::DelayModel;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // --- Build the Figure-1 subcircuit: G1..G9, paths merging at G5 ---
    let mut nl = Netlist::new(2);
    let g1 = nl.add_gate(CellKind::Buf, vec![Signal::Input(0)])?;
    let g2 = nl.add_gate(CellKind::Buf, vec![Signal::Input(1)])?;
    let g3 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g1)])?;
    let g4 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g2)])?;
    let g5 = nl.add_gate(CellKind::Nand2, vec![Signal::Gate(g3), Signal::Gate(g4)])?;
    let g6 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g5)])?;
    let g7 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g5)])?;
    let g8 = nl.add_gate(CellKind::Buf, vec![Signal::Gate(g6)])?;
    let g9 = nl.add_gate(CellKind::Buf, vec![Signal::Gate(g7)])?;
    nl.mark_output(g8)?;
    nl.mark_output(g9)?;
    let circuit = PlacedCircuit::from_parts(
        nl,
        Placement::new(vec![(0.5, 0.5); 9]),
        CellLibrary::synthetic_90nm(),
    );

    // --- The four target paths of the figure ---
    let paths = vec![
        Path::new(vec![g1, g3, g5, g7, g9])?, // p1
        Path::new(vec![g1, g3, g5, g6, g8])?, // p2
        Path::new(vec![g2, g4, g5, g6, g8])?, // p3
        Path::new(vec![g2, g4, g5, g7, g9])?, // p4
    ];
    let dec = decompose_into_segments(&paths)?;
    println!(
        "{} target paths decompose into {} segments",
        paths.len(),
        dec.segment_count()
    );

    // --- Linear delay model d = µ + A·x under the 3-level variation model ---
    let model = VariationModel::three_level();
    let dm = DelayModel::build(&circuit, &paths, &dec, &model)?;
    println!(
        "variation dimension |x| = {} (2 params × regions + per-gate randoms)",
        dm.variable_count()
    );

    // --- Exact selection: rank(A) = 3 representative paths suffice ---
    let sel = exact_select(dm.a(), dm.mu_paths(), DEFAULT_KAPPA)?;
    println!(
        "rank(A) = {} ⇒ representative paths: {:?}, predicted: {:?}",
        sel.rank, sel.selected, sel.remaining
    );

    // --- "Fabricate" a chip and validate the prediction ---
    let mut sampler = VariationSampler::new(dm.variable_count(), 2024);
    let x = sampler.draw();
    let d_all = dm.path_delays(&x)?;
    let measured: Vec<f64> = sel.selected.iter().map(|&i| d_all[i]).collect();
    let predicted = sel.predictor.predict(&measured)?;
    for (k, &p) in sel.remaining.iter().enumerate() {
        println!(
            "path {}: true {:.3} ps, predicted {:.3} ps (error {:.2e} ps)",
            p,
            d_all[p],
            predicted[k],
            (predicted[k] - d_all[p]).abs()
        );
    }
    // The motivating identity itself:
    let lhs = d_all[0];
    let rhs = d_all[1] - d_all[2] + d_all[3];
    println!("identity d_p1 = d_p2 − d_p3 + d_p4: {lhs:.3} = {rhs:.3}");
    pathrep::obs::report("quickstart");
    Ok(())
}
