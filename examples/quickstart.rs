//! Quickstart: the paper's Figure-1 motivating example, end to end.
//!
//! Four paths merge at gate G5; because they share segments, any one of
//! them is an exact linear combination of the other three
//! (`d_p1 = d_p2 − d_p3 + d_p4`). Exact selection discovers this: it keeps
//! `rank(A) = 3` representative paths and predicts the fourth with zero
//! error. The example then runs the approximate (Algorithm 1), hybrid
//! (Algorithm 3, via the ADMM segment program) and Monte-Carlo evaluation
//! stages on the same model, so a `PATHREP_OBS_LEDGER=out.jsonl` run
//! produces numerical-health records for every pipeline stage.
//!
//! Run with: `cargo run --release --example quickstart`

use pathrep::circuit::cell::{CellKind, CellLibrary};
use pathrep::circuit::generator::PlacedCircuit;
use pathrep::circuit::netlist::{Netlist, Signal};
use pathrep::circuit::paths::{decompose_into_segments, Path};
use pathrep::circuit::placement::Placement;
use pathrep::core::approx::{approx_select, ApproxConfig};
use pathrep::core::exact::exact_select;
use pathrep::core::hybrid::{hybrid_select, HybridConfig, HybridInputs};
use pathrep::core::predictor::DEFAULT_KAPPA;
use pathrep::eval::metrics::{evaluate, McConfig, MeasurementPlan};
use pathrep::variation::model::VariationModel;
use pathrep::variation::sampler::VariationSampler;
use pathrep::variation::sensitivity::DelayModel;
use std::error::Error;

const SEED: u64 = 2024;

fn main() -> Result<(), Box<dyn Error>> {
    pathrep::obs::ledger::set_run_context("quickstart", SEED);

    // --- Build the Figure-1 subcircuit: G1..G9, paths merging at G5 ---
    let mut nl = Netlist::new(2);
    let g1 = nl.add_gate(CellKind::Buf, vec![Signal::Input(0)])?;
    let g2 = nl.add_gate(CellKind::Buf, vec![Signal::Input(1)])?;
    let g3 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g1)])?;
    let g4 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g2)])?;
    let g5 = nl.add_gate(CellKind::Nand2, vec![Signal::Gate(g3), Signal::Gate(g4)])?;
    let g6 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g5)])?;
    let g7 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g5)])?;
    let g8 = nl.add_gate(CellKind::Buf, vec![Signal::Gate(g6)])?;
    let g9 = nl.add_gate(CellKind::Buf, vec![Signal::Gate(g7)])?;
    nl.mark_output(g8)?;
    nl.mark_output(g9)?;
    let circuit = PlacedCircuit::from_parts(
        nl,
        Placement::new(vec![(0.5, 0.5); 9]),
        CellLibrary::synthetic_90nm(),
    );

    // --- The four target paths of the figure ---
    let paths = vec![
        Path::new(vec![g1, g3, g5, g7, g9])?, // p1
        Path::new(vec![g1, g3, g5, g6, g8])?, // p2
        Path::new(vec![g2, g4, g5, g6, g8])?, // p3
        Path::new(vec![g2, g4, g5, g7, g9])?, // p4
    ];
    let dec = decompose_into_segments(&paths)?;
    println!(
        "{} target paths decompose into {} segments",
        paths.len(),
        dec.segment_count()
    );

    // --- Linear delay model d = µ + A·x under the 3-level variation model ---
    let model = VariationModel::three_level();
    let dm = DelayModel::build(&circuit, &paths, &dec, &model)?;
    println!(
        "variation dimension |x| = {} (2 params × regions + per-gate randoms)",
        dm.variable_count()
    );

    // --- Exact selection: rank(A) = 3 representative paths suffice ---
    let sel = exact_select(dm.a(), dm.mu_paths(), DEFAULT_KAPPA)?;
    println!(
        "rank(A) = {} ⇒ representative paths: {:?}, predicted: {:?}",
        sel.rank, sel.selected, sel.remaining
    );

    // --- "Fabricate" a chip and validate the prediction ---
    let mut sampler = VariationSampler::new(dm.variable_count(), SEED);
    let x = sampler.draw();
    let d_all = dm.path_delays(&x)?;
    let measured: Vec<f64> = sel.selected.iter().map(|&i| d_all[i]).collect();
    let predicted = sel.predictor.predict(&measured)?;
    for (k, &p) in sel.remaining.iter().enumerate() {
        println!(
            "path {}: true {:.3} ps, predicted {:.3} ps (error {:.2e} ps)",
            p,
            d_all[p],
            predicted[k],
            (predicted[k] - d_all[p]).abs()
        );
    }
    // The motivating identity itself:
    let lhs = d_all[0];
    let rhs = d_all[1] - d_all[2] + d_all[3];
    println!("identity d_p1 = d_p2 − d_p3 + d_p4: {lhs:.3} = {rhs:.3}");

    // --- Approximate selection (Algorithm 1): trade error for fewer
    //     measurements under ε = 5 % of T_cons ---
    let t_cons = dm.mu_paths().iter().cloned().fold(0.0_f64, f64::max) * 1.05;
    let approx = approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.05, t_cons))?;
    println!(
        "approximate selection: |P_r| = {} (effective rank {} of {}), ε_r = {:.2e}",
        approx.selected.len(),
        approx.effective_rank,
        approx.rank,
        approx.epsilon_r
    );

    // --- Hybrid selection (Algorithm 3): the ADMM segment program on the
    //     same model, ε′ = 3 % < ε = 5 % ---
    let inputs = HybridInputs {
        g: dm.g(),
        sigma: dm.sigma(),
        a: dm.a(),
        mu_segments: dm.mu_segments(),
        mu_paths: dm.mu_paths(),
    };
    let hybrid = hybrid_select(&inputs, &HybridConfig::new(0.05, 0.03, t_cons))?;
    println!(
        "hybrid plan: {} segments + {} paths predict {} paths (ADMM {} iterations, converged: {})",
        hybrid.segments.len(),
        hybrid.paths.len(),
        hybrid.remaining.len(),
        hybrid.admm_stats.iterations,
        hybrid.admm_stats.converged
    );

    // --- Monte-Carlo evaluation of the approximate plan ---
    let plan = MeasurementPlan::Paths {
        selected: &approx.selected,
        predictor: &approx.predictor,
    };
    let mc = McConfig {
        n_samples: 2000,
        seed: SEED,
        // Global pathrep-par pool (PATHREP_THREADS); the chunked sample
        // split makes the metrics bit-identical at every worker count, and
        // the accuracy gate verifies exactly that.
        threads: 0,
    };
    let metrics = evaluate(&dm, &plan, &approx.remaining, &mc)?;
    println!(
        "monte-carlo over {} chips: e1 = {:.3} %, e2 = {:.3} %",
        mc.n_samples,
        100.0 * metrics.e1,
        100.0 * metrics.e2
    );
    pathrep::obs::report("quickstart");
    Ok(())
}
