//! Post-silicon diagnosis: localize a systematic process excursion from
//! the representative-path measurements alone (the paper's future-work
//! direction, built on the same linear model).
//!
//! A chip is "fabricated" with a +4σ excursion of the die-to-die `L_eff`
//! component. The diagnoser inverts the measured representative delays into
//! a variation estimate and flags the shifted component.
//!
//! Run with: `cargo run --release --example post_silicon_diagnosis`

use pathrep::core::approx::{approx_select, ApproxConfig};
use pathrep::core::Diagnoser;
use pathrep::eval::pipeline::{prepare, PipelineConfig};
use pathrep::eval::suite::Suite;
use pathrep::variation::model::{Parameter, Variable};
use pathrep::variation::sampler::VariationSampler;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    pathrep::obs::ledger::set_run_context("post_silicon_diagnosis", 99);
    let spec = Suite::by_name("s1196").expect("s1196 is in the suite");
    let pb = prepare(
        &spec,
        &PipelineConfig {
            max_paths: 300,
            ..PipelineConfig::default()
        },
    )?;
    let dm = &pb.delay_model;
    let approx = approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.05, pb.t_cons))?;
    println!(
        "{}: monitoring {} representative paths out of {}",
        spec.name,
        approx.selected.len(),
        pb.path_count()
    );

    // Build the diagnoser over the measured paths' sensitivities.
    let meas_sens = dm.a().select_rows(&approx.selected);
    let meas_mu: Vec<f64> = approx.selected.iter().map(|&i| dm.mu_paths()[i]).collect();
    let diagnoser = Diagnoser::new(&meas_sens, &meas_mu)?;

    // Find the die-to-die Leff variable (level-0 region, flat index 0).
    let d2d_leff = dm
        .variables()
        .iter()
        .position(|v| {
            matches!(
                v,
                Variable::Region {
                    param: Parameter::Leff,
                    region_flat: 0
                }
            )
        })
        .expect("die-to-die Leff is always covered");

    // Fabricate a chip with a +4σ die-to-die Leff excursion.
    let mut sampler = VariationSampler::new(dm.variable_count(), 99);
    let mut x = sampler.draw();
    for v in x.iter_mut() {
        *v *= 0.3; // an otherwise quiet chip
    }
    x[d2d_leff] += 4.0;
    let d_all = dm.path_delays(&x)?;
    let measured: Vec<f64> = approx.selected.iter().map(|&i| d_all[i]).collect();

    // Diagnose.
    let diag = diagnoser.diagnose(&measured)?;
    println!(
        "die-to-die Leff observability: {:.2}",
        diagnoser.explained_variance()[d2d_leff]
    );
    let suspects = diag.suspects(1.5, 0.3);
    println!("suspects (|x̂| > 1.5σ, observability ≥ 0.3):");
    for (j, score) in suspects.iter().take(5) {
        println!("  {:?} — x̂ = {:+.2}σ", dm.variables()[*j], score);
    }
    match suspects.first() {
        Some(&(j, _)) if j == d2d_leff => {
            println!("=> the injected die-to-die Leff excursion ranks first")
        }
        Some(&(j, _)) => println!("=> top suspect is {:?}", dm.variables()[j]),
        None => println!("=> no suspects flagged"),
    }
    pathrep::obs::report("post_silicon_diagnosis");
    Ok(())
}
