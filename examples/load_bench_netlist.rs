//! Loading a real ISCAS'89-format netlist: parse `.bench` text, cut the
//! flip-flop boundary, and run the full representative-path flow on it.
//!
//! (The bundled netlist is a small hand-written example; point the parser
//! at any real `.bench` file to analyze an actual ISCAS'89 circuit.)
//!
//! Run with: `cargo run --release --example load_bench_netlist [file.bench]`

use pathrep::circuit::bench_format::parse_bench;
use pathrep::core::approx::{approx_select, ApproxConfig};
use pathrep::eval::pipeline::{prepare_circuit, PipelineConfig};
use pathrep::variation::model::VariationModel;
use std::error::Error;

const SAMPLE: &str = r"
# A small sequential circuit: two interacting FF cones.
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(q1)
OUTPUT(q2)
s1  = DFF(q1)
s2  = DFF(q2)
n1  = NAND(a, s1)
n2  = NOR(b, s2)
n3  = XOR(n1, n2)
n4  = AND(n3, c)
n5  = NOT(n3)
n6  = NAND(n4, n5, s1)
q1  = NOT(n6)
q2  = OR(n5, n4)
";

fn main() -> Result<(), Box<dyn Error>> {
    pathrep::obs::ledger::set_run_context("load_bench_netlist", 0);
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => SAMPLE.to_string(),
    };
    let parsed = parse_bench(&text)?;
    println!(
        "parsed: {} gates, {} primary inputs ({} from cut flip-flops), {} outputs",
        parsed.netlist().gate_count(),
        parsed.input_names().len(),
        parsed.dff_count(),
        parsed.netlist().outputs().len()
    );

    let circuit = parsed.into_placed();
    let model = VariationModel::three_level();
    let pb = prepare_circuit(
        circuit,
        model,
        &PipelineConfig {
            max_paths: 200,
            ..PipelineConfig::default()
        },
    )?;
    println!(
        "T_cons = {:.1} ps, |P_tar| = {} statistically-critical paths over {} segments",
        pb.t_cons,
        pb.path_count(),
        pb.decomposition.segment_count()
    );

    let dm = &pb.delay_model;
    let sel = approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.05, pb.t_cons))?;
    println!(
        "monitor {} representative paths (rank(A) = {}) to predict all {} targets \
         within ε = 5 % (achieved ε_r = {:.2} %)",
        sel.selected.len(),
        sel.rank,
        pb.path_count(),
        100.0 * sel.epsilon_r
    );
    pathrep::obs::report("load_bench_netlist");
    Ok(())
}
