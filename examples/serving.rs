//! Serving: the quickstart model as a live prediction daemon, in-process.
//!
//! The paper's end product is an *online* capability: once ~r
//! representative paths are chosen at design time, every fabricated die's
//! full timing is predicted from a handful of tester measurements. This
//! example runs that loop — build the quickstart predictor, persist it as
//! a versioned artifact, start the batching daemon on an ephemeral port,
//! and query it like a production tester would: load the model by path,
//! predict a few fabricated chips one at a time and as a batch, read the
//! server stats, then shut the daemon down cleanly.
//!
//! Every served prediction is bit-identical to the offline
//! `MeasurementPredictor::predict` — the micro-batcher never changes a
//! result, only amortizes it.
//!
//! Run with: `cargo run --release --example serving`

use pathrep::serve::demo::build_quickstart_model;
use pathrep::serve::{Client, Server, ServerConfig};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // --- Train offline: Figure-1 circuit → approx selection → artifact ---
    let demo = build_quickstart_model()?;
    let mut path = std::env::temp_dir();
    path.push(format!("pathrep_serving_example_{}.artifact", std::process::id()));
    let path = path.to_string_lossy().into_owned();
    let model_id = demo.artifact.save(&path)?;
    println!(
        "artifact: {path}\n  model {model_id}, {} measurement(s) -> {} target(s), phi {:.3} ps",
        demo.artifact.predictor.measurement_count(),
        demo.artifact.predictor.target_count(),
        demo.artifact.guard_band_phi,
    );

    // --- Start the daemon on an ephemeral port ---
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    };
    let handle = Server::bind(config)?.spawn()?;
    let addr = handle.addr();
    println!("daemon:   listening on {addr}");

    // --- The tester side: load the model, predict fabricated chips ---
    let mut client = Client::connect(addr)?;
    let loaded = client.load_model(&path)?;
    println!("loaded:   {} ({})", loaded.model, loaded.label);

    let chips = demo.measure_chips(6, 42)?;
    for (k, measured) in chips.iter().enumerate() {
        let served = client.predict(&loaded.model, measured)?;
        let offline = demo.artifact.predictor.predict(measured)?;
        assert_eq!(served, offline, "served must equal offline bit-for-bit");
        let worst = served.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "chip {k}:   measured {:7.3} ps -> worst predicted target {:.3} ps \
             (+{:.3} ps guard-band)",
            measured[0],
            worst,
            demo.artifact.guard_band_phi,
        );
    }

    // The same chips as one batched request — same bits, one kernel call.
    let batched = client.predict_batch(&loaded.model, &chips)?;
    for (row, measured) in batched.iter().zip(chips.iter()) {
        assert_eq!(row, &demo.artifact.predictor.predict(measured)?);
    }
    println!("batch:    {} chips served batched, bit-identical to offline", batched.len());

    let stats = client.stats()?;
    println!(
        "stats:    {} requests, {} predictions, {} batches (max {}), {} errors",
        stats.requests, stats.predictions, stats.batches, stats.max_batch, stats.errors,
    );

    client.shutdown()?;
    let final_stats = handle.join();
    println!("drained:  daemon exited with {} errors", final_stats.errors);
    std::fs::remove_file(&path).ok();
    Ok(())
}
