//! Hybrid path/segment selection: designing custom test structures.
//!
//! When independent random variation is large (the paper's scaled-
//! technology regime), measuring whole paths becomes less efficient and
//! the convex segment-selection program picks a compact set of segments
//! whose delays — measurable through custom test structures — predict the
//! entire speedpath pool.
//!
//! Run with: `cargo run --release --example hybrid_segments`

use pathrep::core::hybrid::{hybrid_select_sweep, HybridConfig, HybridInputs};
use pathrep::eval::pipeline::{prepare, PipelineConfig};
use pathrep::eval::suite::Suite;
use pathrep::variation::sampler::VariationSampler;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    pathrep::obs::ledger::set_run_context("hybrid_segments", 4242);
    let spec = Suite::by_name("s1423").expect("s1423 is in the suite");
    let pipeline = PipelineConfig {
        t_cons_factor: 0.98, // tighten the constraint: more target paths
        max_paths: 400,
        random_scale: 3.0, // the paper's Figure-2(b) high-random regime
        ..PipelineConfig::default()
    };
    let pb = prepare(&spec, &pipeline)?;
    let dm = &pb.delay_model;
    println!(
        "{}: |P_tar| = {}, {} segments cover {} gates, |x| = {}",
        spec.name,
        pb.path_count(),
        pb.decomposition.segment_count(),
        pb.covered_gate_count(),
        dm.variable_count()
    );

    // Sweep ε′ below ε = 8 % and keep the cheapest measurement plan.
    let inputs = HybridInputs {
        g: dm.g(),
        sigma: dm.sigma(),
        a: dm.a(),
        mu_segments: dm.mu_segments(),
        mu_paths: dm.mu_paths(),
    };
    let base = HybridConfig::new(0.08, 0.06, pb.t_cons);
    let sel = hybrid_select_sweep(&inputs, &base, &[0.04, 0.06, 0.07])?;
    println!(
        "hybrid plan (ε′ = {:.0} %): {} segments + {} paths = {} measurements \
         for {} predicted paths (exact selection would need {})",
        100.0 * sel.epsilon_prime,
        sel.segments.len(),
        sel.paths.len(),
        sel.measurement_count(),
        sel.remaining.len(),
        sel.exact_size
    );

    // The segments to instrument: identify their gate spans for the test
    // structure designer.
    for &s in sel.segments.iter().take(5) {
        let seg = &pb.decomposition.segments()[s];
        println!(
            "  segment {s}: {} gates, from {:?} to {:?}",
            seg.gates().len(),
            seg.start(),
            seg.end()
        );
    }
    if sel.segments.len() > 5 {
        println!("  ... and {} more", sel.segments.len() - 5);
    }

    // Validate on one simulated chip.
    let mut sampler = VariationSampler::new(dm.variable_count(), 4242);
    let x = sampler.draw();
    let d_seg = dm.segment_delays(&x)?;
    let d_path = dm.path_delays(&x)?;
    let mut measured: Vec<f64> = sel.segments.iter().map(|&s| d_seg[s]).collect();
    measured.extend(sel.paths.iter().map(|&p| d_path[p]));
    let predicted = sel.predictor.predict(&measured)?;
    let worst = sel
        .remaining
        .iter()
        .enumerate()
        .map(|(k, &p)| (predicted[k] - d_path[p]).abs() / d_path[p])
        .fold(0.0_f64, f64::max);
    println!("simulated chip: worst relative error {:.2} %", 100.0 * worst);
    pathrep::obs::report("hybrid_segments");
    Ok(())
}
