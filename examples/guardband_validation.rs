//! Guard-band analysis (Section 6.3): confident pass/fail classification.
//!
//! Every predicted speedpath carries an analytic per-path error bound
//! `ε_i = κ·std(Δ_i)/T_cons`. Post-silicon, a prediction outside the
//! guard-band `ε_i·T_cons` is a *confident* verdict; only paths inside the
//! band need direct measurement. This example classifies the speedpaths of
//! simulated chips and shows how decisive the band is.
//!
//! Run with: `cargo run --release --example guardband_validation`

use pathrep::core::approx::{approx_select, ApproxConfig};
use pathrep::core::guardband::{classify, GuardBandOutcome, GuardBandVerdict};
use pathrep::eval::pipeline::{prepare, PipelineConfig};
use pathrep::eval::suite::Suite;
use pathrep::variation::sampler::VariationSampler;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    pathrep::obs::ledger::set_run_context("guardband_validation", 31337);
    let spec = Suite::by_name("s1238").expect("s1238 is in the suite");
    let pipeline = PipelineConfig {
        max_paths: 300,
        ..PipelineConfig::default()
    };
    let pb = prepare(&spec, &pipeline)?;
    let dm = &pb.delay_model;
    let approx = approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.05, pb.t_cons))?;
    let bands: Vec<f64> = approx
        .predictor
        .wc_errors()
        .iter()
        .map(|wc| (wc / pb.t_cons).min(0.999))
        .collect();
    let avg_band = bands.iter().sum::<f64>() / bands.len().max(1) as f64;
    println!(
        "{}: {} measured paths, {} predicted; average guard-band {:.2} % of T_cons \
         (pre-specified ε = 5 %)",
        spec.name,
        approx.selected.len(),
        approx.remaining.len(),
        100.0 * avg_band
    );

    let mut sampler = VariationSampler::new(dm.variable_count(), 31337);
    let mut outcome = GuardBandOutcome::default();
    let n_chips = 200;
    for _ in 0..n_chips {
        let x = sampler.draw();
        let d_all = dm.path_delays(&x)?;
        let measured: Vec<f64> = approx.selected.iter().map(|&i| d_all[i]).collect();
        let predicted = approx.predictor.predict(&measured)?;
        for (k, &p) in approx.remaining.iter().enumerate() {
            outcome.record(predicted[k], d_all[p], bands[k], pb.t_cons);
            // Show one example verdict from the first chip.
            if outcome.total() == 1 {
                let v = classify(predicted[k], bands[k], pb.t_cons);
                let tag = match v {
                    GuardBandVerdict::Pass => "PASS",
                    GuardBandVerdict::Fail => "FAIL",
                    GuardBandVerdict::Uncertain => "MEASURE",
                };
                println!(
                    "example: path {p} predicted {:.1} ps vs T = {:.1} ps ⇒ {tag}",
                    predicted[k], pb.t_cons
                );
            }
        }
    }
    println!(
        "{n_chips} chips × {} paths: {} confident-correct, {} confident-wrong, \
         {} deferred — {:.1} % decisive",
        approx.remaining.len(),
        outcome.confident_correct,
        outcome.confident_wrong,
        outcome.uncertain,
        100.0 * outcome.decisiveness()
    );
    pathrep::obs::report("guardband_validation");
    Ok(())
}
