//! Speedpath monitoring: the paper's main workflow on a realistic circuit.
//!
//! Design stage: generate an ISCAS'89-class circuit, extract the
//! statistically-critical paths, and run approximate selection (ε = 5 %) so
//! only a handful of representative paths need post-silicon measurement.
//!
//! Post-silicon stage (simulated): for a few "fabricated chips" (variation
//! draws), measure the representative paths and predict every other target
//! speedpath, then report the prediction quality.
//!
//! Run with: `cargo run --release --example speedpath_monitoring`

use pathrep::core::approx::{approx_select, ApproxConfig};
use pathrep::eval::pipeline::{prepare, PipelineConfig};
use pathrep::eval::suite::Suite;
use pathrep::variation::sampler::VariationSampler;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    pathrep::obs::ledger::set_run_context("speedpath_monitoring", 777);
    // --- Design stage ---
    let spec = Suite::by_name("s1423").expect("s1423 is in the suite");
    let pipeline = PipelineConfig {
        max_paths: 400,
        ..PipelineConfig::default()
    };
    let pb = prepare(&spec, &pipeline)?;
    println!(
        "{}: T_cons = {:.0} ps, circuit yield {:.1} %, |P_tar| = {}",
        spec.name,
        pb.t_cons,
        100.0 * pb.circuit_yield,
        pb.path_count()
    );

    let dm = &pb.delay_model;
    let approx = approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.05, pb.t_cons))?;
    println!(
        "exact selection needs rank(A) = {} paths; ε = 5 % shrinks it to {} \
         (effective rank {})",
        approx.rank,
        approx.selected.len(),
        approx.effective_rank
    );

    // --- Post-silicon stage: three simulated chips ---
    let mut sampler = VariationSampler::new(dm.variable_count(), 777);
    for chip in 1..=3 {
        let x = sampler.draw();
        let d_all = dm.path_delays(&x)?;
        let measured: Vec<f64> = approx.selected.iter().map(|&i| d_all[i]).collect();
        let predicted = approx.predictor.predict(&measured)?;
        let mut worst = 0.0_f64;
        let mut mean = 0.0_f64;
        for (k, &p) in approx.remaining.iter().enumerate() {
            let rel = (predicted[k] - d_all[p]).abs() / d_all[p];
            worst = worst.max(rel);
            mean += rel;
        }
        mean /= approx.remaining.len().max(1) as f64;
        println!(
            "chip {chip}: {} measurements predict {} speedpaths — \
             worst error {:.2} %, mean {:.3} %",
            approx.selected.len(),
            approx.remaining.len(),
            100.0 * worst,
            100.0 * mean
        );
    }
    pathrep::obs::report("speedpath_monitoring");
    Ok(())
}
