//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros,
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, and [`collection::vec`].
//!
//! Differences from upstream: cases are drawn from a fixed per-test seed
//! (derived from the test name), and there is **no shrinking** — a failing
//! case panics with the raw inputs via the normal assert message. That is
//! a weaker debugging experience but an identical pass/fail contract for
//! deterministic properties.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Builds the deterministic per-test RNG (FNV-1a over the test name).
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// Error type a property body may early-return with `return Ok(())` /
/// `Err(...)` (mirrors upstream's `TestCaseError`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.new_value(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.new_value(rng)).new_value(rng)
        }
    }

    /// Always yields a clone of the given value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($(ref $name,)+) = *self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Admissible size arguments for [`vec`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `elem` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a property holds; panics (failing the case) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal; panics (failing the case) otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategies = ( $($strat,)+ );
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__config.cases {
                let ( $($arg,)+ ) =
                    $crate::strategy::Strategy::new_value(&__strategies, &mut __rng);
                // Match upstream proptest: the body runs in a closure
                // returning Result, so `return Ok(())` skips a case.
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("property {} failed: {:?}", stringify!($name), e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_compose(
            x in 0.5..2.0f64,
            n in 1usize..5,
            v in crate::collection::vec(-1.0..1.0f64, 3..7),
        ) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!(v.len() >= 3 && v.len() < 7);
            for e in &v {
                prop_assert!((-1.0..1.0).contains(e));
            }
        }

        #[test]
        fn flat_map_links_dimensions(
            pair in (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
                crate::collection::vec(0.0..1.0f64, r * c).prop_map(move |d| (r, c, d))
            })
        ) {
            let (r, c, d) = pair;
            prop_assert_eq!(d.len(), r * c);
        }
    }

    #[test]
    fn per_test_rng_is_deterministic() {
        use rand::Rng;
        let mut a = crate::test_rng("alpha");
        let mut b = crate::test_rng("alpha");
        let mut c = crate::test_rng("beta");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        assert_ne!(b.gen::<u64>(), c.gen::<u64>());
    }
}
