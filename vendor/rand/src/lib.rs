//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates-io access, so this workspace vendors
//! a minimal, dependency-free implementation of exactly the API surface the
//! pathrep crates use: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12, but every consumer in this
//! workspace treats the stream as an opaque reproducible source, so only
//! determinism (same seed ⇒ same stream) matters, not stream equality with
//! upstream.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from their "natural" domain by
/// [`Rng::gen`] (`[0, 1)` for floats, the full range for integers).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn uniformly from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let u = f64::sample(rng);
        // Clamp guards against rounding up to `end` when the span is huge.
        (self.start + u * (self.end - self.start)).min(f64::from_bits(self.end.to_bits() - 1))
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 sample range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Uniform integer in `[0, bound)` by Lemire's widening-multiply method
/// with rejection, so the draw is exactly uniform.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-value API, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's natural domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 (deterministic, fast, passes BigCrush).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state; guaranteed non-zero.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
            let k = rng.gen_range(3usize..9);
            assert!((3..9).contains(&k));
            let j = rng.gen_range(0usize..=4);
            assert!(j <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
