//! Offline stand-in for `serde`.
//!
//! The workspace uses serde only for `#[derive(Serialize, Deserialize)]`
//! annotations on model types; no code path serializes through serde at
//! runtime (the `pathrep-obs` telemetry export hand-rolls its JSON). This
//! shim provides the two marker traits and re-exports the no-op derives so
//! those annotations keep compiling without crates-io access.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
