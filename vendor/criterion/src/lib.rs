//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the workspace's benches use — `Criterion`
//! with `sample_size` / `warm_up_time` / `measurement_time`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! [`black_box`] and the `criterion_group!` / `criterion_main!` macros —
//! over a plain wall-clock sampler. No statistical analysis or HTML
//! reports; each bench prints `name  time: [min mean max]` per sample set.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized bench (`group/function` + parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// The bench harness handle passed to target functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per bench.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per bench.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement duration per bench.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one bench.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_named(id, &mut f);
        self
    }

    /// Runs one bench with an input value (criterion's parameterized form).
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_named(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run_named(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
    }
}

/// Times a routine; handed to the closure given to `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Benchmarks `routine`: warms up, then records `sample_size` samples
    /// of its mean iteration time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, also sizing how many iterations fit one sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-12)) as u64).clamp(1, u64::MAX);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let min = self.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().cloned().fold(0.0_f64, f64::max);
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a bench group: a function invoking each target with a
/// configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        c.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
    }

    #[test]
    fn harness_runs_quickly() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        target(&mut c);
    }

    criterion_group! {
        name = group_a;
        config = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = target
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        group_a();
    }
}
