//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API: `lock()` /
//! `read()` / `write()` return guards directly (poisoning is swallowed by
//! recovering the inner guard, matching parking_lot's poison-free
//! semantics).

use std::sync::{self, PoisonError};

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning — a poisoned lock is recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
