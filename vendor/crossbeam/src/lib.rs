//! Offline stand-in for `crossbeam`'s scoped threads.
//!
//! Provides `crossbeam::scope(|s| { s.spawn(|_| ...); ... })` on top of
//! `std::thread::scope`. Matching crossbeam's contract, a panic in any
//! spawned thread surfaces as an `Err` from [`scope`] rather than a panic
//! in the caller.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// A scope handle; `spawn` borrows it so threads may reference stack data
/// of the caller.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope (crossbeam
    /// convention) so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which threads borrowing local state can be
/// spawned; joins them all before returning.
///
/// # Errors
///
/// Returns `Err` with the panic payload if any spawned thread (or `f`
/// itself) panicked.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    // std::thread::scope re-raises child panics in the caller; catch them
    // to reproduce crossbeam's Err(payload) contract.
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::scope;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn threads_share_borrowed_state() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| hits.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| hits.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
