//! Offline stand-in for `serde_derive`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` — nothing
//! serializes through serde at runtime (structured output is hand-rolled,
//! see `pathrep-obs`) — so these derives expand to nothing. The
//! `attributes(serde)` declaration keeps any future `#[serde(...)]` field
//! attributes from becoming hard errors.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
